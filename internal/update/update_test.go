package update

import (
	"math"
	"testing"

	"repro/internal/te"
	"repro/internal/topo"
	"repro/internal/workload"
)

// solveOn builds a TE allocation with the given headroom.
func solveOn(t *testing.T, g *topo.Graph, m workload.Matrix, headroom float64) *te.Allocation {
	t.Helper()
	a, err := te.Solve(g, m, te.Config{KPaths: 4, Headroom: headroom})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNaiveTransitionOverloads(t *testing.T) {
	// Two commodities swap between the two sides of a diamond whose
	// links are exactly at capacity: an uncoordinated swap transiently
	// doubles load on each side.
	g := topo.New()
	g.AddLink(topo.Link{A: 1, B: 2, APort: 1, BPort: 1, Capacity: 10})
	g.AddLink(topo.Link{A: 2, B: 4, APort: 2, BPort: 1, Capacity: 10})
	g.AddLink(topo.Link{A: 1, B: 3, APort: 2, BPort: 1, Capacity: 10})
	g.AddLink(topo.Link{A: 3, B: 4, APort: 2, BPort: 2, Capacity: 10})

	up := topo.Path{Nodes: []topo.NodeID{1, 2, 4}, Cost: 2}
	down := topo.Path{Nodes: []topo.NodeID{1, 3, 4}, Cost: 2}
	caps := Capacities(g)
	mk := func(aPath, bPath topo.Path) *te.Allocation {
		alloc := &te.Allocation{
			LinkLoad: map[topo.LinkKey]float64{},
			LinkCap:  caps,
		}
		alloc.Commodities = []te.CommodityAlloc{
			{Demand: workload.Demand{Src: 1, Dst: 4, Rate: 10}, Allocated: 10,
				Paths: []te.PathAlloc{{Path: aPath, Rate: 10}}},
			{Demand: workload.Demand{Src: 4, Dst: 1, Rate: 10}, Allocated: 10,
				Paths: []te.PathAlloc{{Path: bPath, Rate: 10}}},
		}
		return alloc
	}
	old := mk(up, down)
	new_ := mk(down, up)

	// Naive one-shot transition: both diamond sides transiently carry
	// both commodities -> overload.
	if v := StepViolations(old, new_, caps); len(v) == 0 {
		t.Fatal("naive swap reported congestion-free")
	}
	// The planner cannot fix a zero-headroom swap by interpolation
	// either (every interpolation keeps both at full rate).
	if _, err := (Planner{MaxIntermediates: 8}).Plan(old, new_, caps); err == nil {
		t.Fatal("plan for zero-headroom swap should fail")
	}
}

func TestPlannerWithScratchSucceeds(t *testing.T) {
	// SWAN's theorem: with scratch s on both endpoints, ceil(1/s)-1
	// intermediate steps always suffice. s=0.5 -> at most 1.
	g := topo.New()
	g.AddLink(topo.Link{A: 1, B: 2, APort: 1, BPort: 1, Capacity: 10})
	g.AddLink(topo.Link{A: 2, B: 4, APort: 2, BPort: 1, Capacity: 10})
	g.AddLink(topo.Link{A: 1, B: 3, APort: 2, BPort: 1, Capacity: 10})
	g.AddLink(topo.Link{A: 3, B: 4, APort: 2, BPort: 2, Capacity: 10})
	caps := Capacities(g)

	up := topo.Path{Nodes: []topo.NodeID{1, 2, 4}, Cost: 2}
	down := topo.Path{Nodes: []topo.NodeID{1, 3, 4}, Cost: 2}
	mk := func(p topo.Path, rate float64) *te.Allocation {
		return &te.Allocation{
			LinkLoad: map[topo.LinkKey]float64{},
			LinkCap:  caps,
			Commodities: []te.CommodityAlloc{{
				Demand:    workload.Demand{Src: 1, Dst: 4, Rate: rate},
				Allocated: rate,
				Paths:     []te.PathAlloc{{Path: p, Rate: rate}},
			}},
		}
	}
	// Rate 5 = 50% of capacity (s = 0.5). Moving the commodity from the
	// top to the bottom path needs no intermediate at all (max(5,5)=5
	// per link), so the planner returns the direct plan.
	old, new_ := mk(up, 5), mk(down, 5)
	plan, err := Planner{}.Plan(old, new_, caps)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Intermediates() != 0 {
		t.Errorf("intermediates = %d, want 0", plan.Intermediates())
	}
	if v := plan.Validate(caps); len(v) != 0 {
		t.Errorf("plan has violations: %+v", v)
	}
}

func TestPlannerOnWANTransitions(t *testing.T) {
	// Random gravity transitions on the WAN with 10% scratch: the
	// planner must always find a congestion-free plan, while naive
	// transitions usually overload something.
	g, _ := topo.WAN(1000)
	caps := Capacities(g)
	naiveOverloads, planned := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		m1 := workload.Gravity(g, 9000, seed)
		m2 := workload.Perturb(m1, 0.8, seed+100)
		old := solveOn(t, g, m1, 0.10)
		new_ := solveOn(t, g, m2, 0.10)

		if len(StepViolations(old, new_, caps)) > 0 {
			naiveOverloads++
		}
		plan, err := (Planner{MaxIntermediates: 16}).Plan(old, new_, caps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v := plan.Validate(caps); len(v) != 0 {
			t.Fatalf("seed %d: planned transition still violates: %+v", seed, v)
		}
		// SWAN bound: s=0.1 -> at most ceil(1/0.1)-1 = 9 intermediates.
		if plan.Intermediates() > 9 {
			t.Errorf("seed %d: %d intermediates exceeds SWAN bound 9",
				seed, plan.Intermediates())
		}
		planned++
	}
	if planned != 8 {
		t.Fatalf("planned %d of 8", planned)
	}
	t.Logf("naive transitions overloading: %d/8", naiveOverloads)
}

func TestInterpolateEndpoints(t *testing.T) {
	g, _ := topo.WAN(1000)
	m := workload.Gravity(g, 8000, 1)
	a := solveOn(t, g, m, 0.1)
	b := solveOn(t, g, workload.Perturb(m, 0.5, 2), 0.1)

	// t=0 reproduces old loads; t=1 reproduces new loads.
	for _, tc := range []struct {
		t    float64
		want *te.Allocation
	}{{0, a}, {1, b}} {
		got := Interpolate(a, b, tc.t)
		for k, load := range tc.want.LinkLoad {
			if math.Abs(got.LinkLoad[k]-load) > 1e-6 {
				t.Fatalf("t=%v link %v: %v != %v", tc.t, k, got.LinkLoad[k], load)
			}
		}
	}
	// Every intermediate respects capacity when endpoints do (linearity).
	for _, tt := range []float64{0.25, 0.5, 0.75} {
		mid := Interpolate(a, b, tt)
		for k, load := range mid.LinkLoad {
			if load > mid.LinkCap[k]+1e-6 {
				t.Fatalf("t=%v link %v overloaded: %v > %v", tt, k, load, mid.LinkCap[k])
			}
		}
	}
	// Clamping.
	lo := Interpolate(a, b, -3)
	for k, load := range a.LinkLoad {
		if math.Abs(lo.LinkLoad[k]-load) > 1e-6 {
			t.Fatal("t<0 not clamped to old")
		}
	}
}

// TestPlanPropertyEveryStepSafe is the package invariant: whatever the
// planner returns, every intermediate state AND every transition step
// respects full capacity.
func TestPlanPropertyEveryStepSafe(t *testing.T) {
	g, _ := topo.WAN(1000)
	caps := Capacities(g)
	for seed := int64(50); seed < 60; seed++ {
		old := solveOn(t, g, workload.Gravity(g, 10000, seed), 0.15)
		new_ := solveOn(t, g, workload.Gravity(g, 10000, seed*7+1), 0.15)
		plan, err := (Planner{MaxIntermediates: 12}).Plan(old, new_, caps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Steady states within capacity.
		for si, step := range plan.Steps {
			for k, load := range step.LinkLoad {
				if load > caps[k]+1e-6 {
					t.Fatalf("seed %d step %d: steady load %v > cap %v on %v",
						seed, si, load, caps[k], k)
				}
			}
		}
		// Transitions safe (Validate re-checks the max-overlap bound).
		if v := plan.Validate(caps); len(v) != 0 {
			t.Fatalf("seed %d: violations %+v", seed, v)
		}
	}
}
