package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/flowtable"
	"repro/internal/packet"
	"repro/internal/zof"
)

// E2Config parameterizes the lookup-scaling experiment.
type E2Config struct {
	Sizes   []int         // table sizes to sweep
	Measure time.Duration // wall time per point (default 200ms)
}

// lookupFixture holds one populated structure set plus probe frames.
type lookupFixture struct {
	linear *flowtable.Table
	tuple  *flowtable.TupleSpace
	exact  *flowtable.Exact[int]
	lpm    *flowtable.LPM[int]
	cached *flowtable.MicroCache

	frames []*packet.Frame
	keys   []packet.FlowKey
	addrs  []uint32
}

// buildLookupFixture installs n rules into every structure. Rules are
// /24 destination prefixes (LPM/linear/tuple) and exact 5-tuples
// (exact map); probes are frames that hit.
func buildLookupFixture(n int, seed int64) *lookupFixture {
	rng := rand.New(rand.NewSource(seed))
	fx := &lookupFixture{
		linear: flowtable.NewTable(0),
		tuple:  flowtable.NewTupleSpace(),
		exact:  flowtable.NewExact[int](n),
		lpm:    flowtable.NewLPM[int](),
		cached: flowtable.NewMicroCache(1 << 17),
	}
	now := time.Unix(0, 0)
	prefixes := make([]uint32, n)
	for i := 0; i < n; i++ {
		p := rng.Uint32() &^ 0xff // /24
		prefixes[i] = p
		m := zof.MatchAll()
		m.Wildcards &^= zof.WEtherType
		m.EtherType = packet.EtherTypeIPv4
		m.IPDst = packet.IPv4FromUint32(p)
		m.DstPrefix = 24
		e := &flowtable.Entry{Match: m, Priority: uint16(i % 8),
			Actions: []zof.Action{zof.Output(1)}}
		_ = fx.linear.Add(e, false, now)
		fx.tuple.Insert(e)
		fx.lpm.Insert(p, 24, i)
	}
	// Probe set: 1024 frames landing inside random installed prefixes.
	buf := packet.NewBuffer(128)
	for i := 0; i < 1024; i++ {
		p := prefixes[rng.Intn(len(prefixes))]
		dst := packet.IPv4FromUint32(p | uint32(rng.Intn(256)))
		src := packet.IPv4FromUint32(rng.Uint32())
		buf.Reset()
		udp := packet.UDP{SrcPort: uint16(rng.Intn(65536)), DstPort: 80}
		udp.SerializeTo(buf)
		ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: src, Dst: dst}
		ip.SerializeTo(buf)
		eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
		eth.SerializeTo(buf)
		var f packet.Frame
		if packet.Decode(append([]byte(nil), buf.Bytes()...), &f) != nil {
			continue
		}
		fx.frames = append(fx.frames, &f)
		key := packet.ExtractFlowKey(&f)
		fx.keys = append(fx.keys, key)
		fx.exact.Put(key, i)
		fx.addrs = append(fx.addrs, dst.Uint32())
	}
	return fx
}

// measureRate runs fn repeatedly for roughly d and returns ops/sec.
func measureRate(d time.Duration, fn func(i int)) float64 {
	if d <= 0 {
		d = 200 * time.Millisecond
	}
	// Calibrate with growing batches so the clock is read rarely.
	ops := 0
	start := time.Now()
	batch := 256
	for time.Since(start) < d {
		for i := 0; i < batch; i++ {
			fn(ops + i)
		}
		ops += batch
		if batch < 1<<20 {
			batch *= 2
		}
	}
	return float64(ops) / time.Since(start).Seconds()
}

// E2Lookup sweeps table sizes for every structure. Shape: exact-map and
// LPM rates are flat-ish in table size; tuple space pays per-shape
// probes; the linear scan decays as ~1/N.
func E2Lookup(cfg E2Config) *Table {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{100, 1000, 10000, 100000}
	}
	t := &Table{
		ID:     "E2",
		Title:  "flow table lookup scaling (lookups/sec)",
		Header: []string{"entries", "linear", "tuple-space", "lpm-trie", "exact-map", "micro-cache"},
		Notes: []string{
			"probes hit installed /24 dst rules; exact map keyed by 5-tuple",
			"expected shape: exact ≥ cache ≥ lpm ≥ tuple ≫ linear; linear decays ~1/N",
		},
	}
	for _, n := range cfg.Sizes {
		fx := buildLookupFixture(n, int64(n))
		now := time.Unix(0, 0)
		nf := len(fx.frames)

		linear := measureRate(cfg.Measure, func(i int) {
			fx.linear.Lookup(fx.frames[i%nf], 1, 64, now)
		})
		tuple := measureRate(cfg.Measure, func(i int) {
			fx.tuple.Lookup(fx.frames[i%nf], 1)
		})
		lpm := measureRate(cfg.Measure, func(i int) {
			fx.lpm.Lookup(fx.addrs[i%nf])
		})
		exact := measureRate(cfg.Measure, func(i int) {
			fx.exact.Get(fx.keys[i%nf])
		})
		// Micro-cache: warm it once, then measure hits.
		gen := fx.linear.Gen()
		for i, f := range fx.frames {
			key := flowtable.MakeCacheKey(f, 1)
			fx.cached.Put(key, gen, fx.linear.Entries()[i%fx.linear.Len()])
		}
		cache := measureRate(cfg.Measure, func(i int) {
			key := flowtable.MakeCacheKey(fx.frames[i%nf], 1)
			fx.cached.Get(key, gen)
		})
		t.AddRow(fmt.Sprintf("%d", n),
			f0(linear), f0(tuple), f0(lpm), f0(exact), f0(cache))
	}
	return t
}
