// Package experiments implements the synthetic evaluation suite
// declared in DESIGN.md (E1-E7): each experiment drives the platform
// with a generated workload and renders the table or data series the
// corresponding SIGCOMM'13-style evaluation would report. cmd/zbench
// is the CLI front end; the root bench_test.go wraps the same code in
// testing.B harnesses.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's rendered result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f renders a float compactly.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
