package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
	"repro/internal/packet"
	"repro/internal/zof"
)

// E7Config parameterizes the parallel-pipeline experiment.
type E7Config struct {
	Workers []int         // worker counts to sweep (default 1,2,4,8 + GOMAXPROCS)
	Measure time.Duration // wall time per point (default 500ms)
	Procs   int           // GOMAXPROCS for the run; 0 = NumCPU (restored after)
}

// E7Point is one measured worker count.
type E7Point struct {
	Workers      int     `json:"workers"`
	FramesPerSec float64 `json:"frames_per_sec"`
	SpeedupVs1   float64 `json:"speedup_vs_1"`
}

// E7Result is the machine-readable output (BENCH_e7.json). Scaling is
// bounded by GOMAXPROCS: on a single-core host every worker count
// timeshares one CPU and speedup_vs_1 hovers around 1.0; the datapath
// itself has no serialization left to limit it.
type E7Result struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	MeasureMS  int64     `json:"measure_ms"`
	Warning    string    `json:"warning,omitempty"` // set when cores < workers: speedups are not meaningful
	Points     []E7Point `json:"points"`
}

// e7Switch builds a switch with n disjoint forwarding lanes: lane i
// receives its own microflow on ingress port i+1 and a dedicated flow
// entry outputs it to egress port 1001+i (tx is a no-op sink). Disjoint
// lanes mean the measurement exposes pipeline serialization, not
// artificial contention on one entry's counters.
func e7Switch(n int) (*dataplane.Switch, [][]byte, error) {
	sw := dataplane.NewSwitch(dataplane.Config{DPID: 1, DropOnMiss: true})
	frames := make([][]byte, n)
	for w := 0; w < n; w++ {
		in, out := uint32(w+1), uint32(1001+w)
		sw.AddPort(in, fmt.Sprintf("in%d", w), 1000)
		sw.AddPort(out, fmt.Sprintf("out%d", w), 1000).SetTx(func([]byte) {})
		m := zof.MatchAll()
		m.Wildcards &^= zof.WInPort
		m.InPort = in
		var repErr error
		sw.Process(&zof.FlowMod{Command: zof.FlowAdd, Match: m, Priority: 10,
			BufferID: zof.NoBuffer, Actions: []zof.Action{zof.Output(out)}}, 1,
			func(rep zof.Message, _ uint32) {
				if e, ok := rep.(*zof.Error); ok {
					repErr = fmt.Errorf("flow add: %s", e.Detail)
				}
			})
		if repErr != nil {
			return nil, nil, repErr
		}
		buf := packet.NewBuffer(64)
		buf.Append(22)
		src := packet.IPv4Addr{10, 1, byte(w >> 8), byte(w)}
		dst := packet.IPv4Addr{10, 2, byte(w >> 8), byte(w)}
		udp := packet.UDP{SrcPort: uint16(4000 + w), DstPort: 53}
		udp.SerializeToWithChecksum(buf, src, dst)
		ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: src, Dst: dst}
		ip.SerializeTo(buf)
		eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
		eth.SerializeTo(buf)
		frames[w] = append([]byte(nil), buf.Bytes()...)
		sw.HandleFrame(in, frames[w]) // warm the microflow cache
	}
	return sw, frames, nil
}

// E7PipelineParallel measures lock-free datapath throughput versus the
// number of goroutines pumping frames through one shared switch
// (DESIGN.md "Concurrency model"). It reports aggregate frames/s per
// worker count and the speedup over a single worker.
func E7PipelineParallel(cfg E7Config) (*Table, *E7Result, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)}
	}
	if cfg.Measure <= 0 {
		cfg.Measure = 500 * time.Millisecond
	}
	maxW, seen := 0, map[int]bool{}
	workers := cfg.Workers[:0:0]
	for _, nw := range cfg.Workers {
		if nw < 1 || seen[nw] {
			continue
		}
		seen[nw] = true
		workers = append(workers, nw)
		if nw > maxW {
			maxW = nw
		}
	}
	sw, frames, err := e7Switch(maxW)
	if err != nil {
		return nil, nil, err
	}

	// The original harness only *reported* GOMAXPROCS and so silently
	// measured worker scaling on however many procs the runner happened
	// to give it. Set it explicitly (default: every core) and restore on
	// exit, and flag the run when the host can't back the sweep.
	procs := cfg.Procs
	if procs <= 0 {
		procs = runtime.NumCPU()
	}
	orig := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(orig)

	res := &E7Result{
		GOMAXPROCS: procs,
		NumCPU:     runtime.NumCPU(),
		MeasureMS:  cfg.Measure.Milliseconds(),
	}
	if cores := min(procs, res.NumCPU); cores < maxW {
		res.Warning = fmt.Sprintf(
			"effective cores=%d < max workers=%d: multi-worker points timeshare cores; speedup_vs_1 reflects scheduling, not scaling",
			cores, maxW)
	}
	tbl := &Table{
		ID:     "E7",
		Title:  "parallel pipeline scaling (one switch, N ingress goroutines)",
		Header: []string{"workers", "frames/s", "speedup"},
		Notes: []string{fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d; speedup is bounded by available cores",
			res.GOMAXPROCS, res.NumCPU)},
	}
	if res.Warning != "" {
		tbl.Notes = append(tbl.Notes, "WARNING: "+res.Warning)
	}

	var base float64
	for _, nw := range workers {
		var stop atomic.Bool
		counts := make([]uint64, nw)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				in, fr := uint32(w+1), frames[w]
				var n uint64
				for !stop.Load() {
					sw.HandleFrame(in, fr)
					n++
				}
				counts[w] = n
			}(w)
		}
		time.Sleep(cfg.Measure)
		stop.Store(true)
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		var total uint64
		for _, n := range counts {
			total += n
		}
		fps := float64(total) / elapsed
		if base == 0 {
			base = fps
		}
		pt := E7Point{Workers: nw, FramesPerSec: fps, SpeedupVs1: fps / base}
		res.Points = append(res.Points, pt)
		tbl.AddRow(fmt.Sprintf("%d", nw), f0(fps), f2(pt.SpeedupVs1)+"x")
	}
	return tbl, res, nil
}
