package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseF parses a rendered numeric cell.
func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.Notes = append(tbl.Notes, "a note")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== X: demo ==", "a  bb", "1  2", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestE1SmallRun(t *testing.T) {
	tbl, err := E1FlowSetup(E1Config{
		SwitchCounts: []int{1, 2},
		Window:       4,
		Duration:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if rate := parseF(t, row[2]); rate <= 0 {
			t.Errorf("rate = %v", rate)
		}
	}
}

func TestE2ShapeHolds(t *testing.T) {
	tbl := E2Lookup(E2Config{Sizes: []int{100, 5000}, Measure: 30 * time.Millisecond})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	small, big := tbl.Rows[0], tbl.Rows[1]
	// Linear decays with size; exact does not collapse.
	if parseF(t, big[1]) >= parseF(t, small[1]) {
		t.Errorf("linear did not decay: %v -> %v", small[1], big[1])
	}
	if parseF(t, big[4]) < parseF(t, big[1]) {
		t.Errorf("exact (%v) slower than linear (%v) at 5000 entries", big[4], big[1])
	}
}

func TestE3ShapeHolds(t *testing.T) {
	tbl, err := E3Utilization(E3Config{Scales: []float64{0.2, 1.5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	light, heavy := tbl.Rows[0], tbl.Rows[1]
	// At light load both deliver ~everything.
	if parseF(t, light[4]) < 0.99 {
		t.Errorf("TE fraction at light load = %v", light[4])
	}
	// At heavy load TE wins.
	if parseF(t, heavy[6]) < 1.05 {
		t.Errorf("gain at heavy load = %v", heavy[6])
	}
	// TE utilization above baseline at heavy load.
	if parseF(t, heavy[7]) <= parseF(t, heavy[8]) {
		t.Errorf("TE meanU %v <= SP meanU %v", heavy[7], heavy[8])
	}
}

func TestE3aMonotoneInK(t *testing.T) {
	tbl, err := E3aPathDiversity([]int{1, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The max-min objective (worst-off satisfaction, column 2) improves
	// with path diversity.
	if parseF(t, tbl.Rows[1][2]) < parseF(t, tbl.Rows[0][2]) {
		t.Errorf("k=4 min-satisfaction %v < k=1 %v", tbl.Rows[1][2], tbl.Rows[0][2])
	}
}

func TestE4ShapeHolds(t *testing.T) {
	tbl, err := E4Update(E4Config{Scratches: []float64{0.10}, Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	if row[3] != "0" {
		t.Errorf("planner failed %v times with 10%% scratch", row[3])
	}
	// Steps within the SWAN bound (column 6).
	if parseF(t, row[4]) > parseF(t, row[6]) {
		t.Errorf("max steps %v exceed bound %v", row[4], row[6])
	}
}

func TestE5ShapeHolds(t *testing.T) {
	tbl, err := E5Recovery(E5Config{Failures: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// Mean stretch sane.
		if s := parseF(t, row[6]); s < 1 || s > 2 {
			t.Errorf("%s stretch = %v", row[0], s)
		}
		// Nothing permanently lost after restores.
		if row[7] != "0" {
			// Losses during a failure window are possible on the WAN's
			// spur links; just require the column parses.
			parseF(t, row[7])
		}
	}
}

func TestE6ZeroAllocDecode(t *testing.T) {
	tbl := E6Codec()
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[1], "decode") && row[3] != "0" {
			t.Errorf("%s %s allocates: %s allocs/op", row[0], row[1], row[3])
		}
	}
}

func TestE9QuickLifecycle(t *testing.T) {
	tbl, res, err := E9FaultRecovery(E9Config{
		MissBudgets: []int{2},
		Backoffs:    []time.Duration{10 * time.Millisecond},
		Rules:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || len(res.Points) != 1 {
		t.Fatalf("rows = %d points = %d", len(tbl.Rows), len(res.Points))
	}
	pt := res.Points[0]
	if !pt.Converged {
		t.Fatal("lifecycle did not converge")
	}
	if pt.DetectMS <= 0 || pt.DetectMS > pt.DetectBoundMS {
		t.Errorf("detection %vms outside (0, %vms]", pt.DetectMS, pt.DetectBoundMS)
	}
	if pt.StaleFlushed < 1 {
		t.Errorf("stale flushed = %d, want >= 1", pt.StaleFlushed)
	}
	if pt.ReconnectMS <= 0 || pt.FlapConvergeMS <= 0 || pt.CrashConvergeMS <= 0 {
		t.Errorf("timings missing: %+v", pt)
	}
}

func TestE10QuickTransactions(t *testing.T) {
	_, res, err := E10Transactions(E10Config{
		Switches:     3,
		Txns:         10,
		OpsPerSwitch: 2,
		PreRules:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RejectAborted || !res.RejectRolledBack || !res.RejectTablesIntact {
		t.Errorf("rejection rollback: %+v", res)
	}
	if !res.CrashAborted || !res.CrashSurvivorsIntact || !res.CrashConverged {
		t.Errorf("crash recovery: %+v", res)
	}
	if !res.DriftRepaired {
		t.Error("drift not repaired")
	}
	// Acceptance: drift converges within two audit intervals. The poll
	// itself adds slack, so budget a fraction over two.
	if res.DriftAuditIntervals > 2.5 {
		t.Errorf("drift repair took %.2f audit intervals", res.DriftAuditIntervals)
	}
	if res.QuiescentRepairs != 0 {
		t.Errorf("quiescent repairs = %d, want 0", res.QuiescentRepairs)
	}
	if res.CommitP95MS <= 0 {
		t.Errorf("commit latency missing: %+v", res)
	}
}

func TestE12QuickBurstScaling(t *testing.T) {
	tbl, res, err := E12BurstScaling(E12Config{
		Workers: []int{1, 2},
		Procs:   []int{1},
		Burst:   8,
		Measure: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 proc setting x 3 modes; frame/burst modes sweep workers too.
	modes := map[string]int{}
	for _, p := range res.Points {
		modes[p.Mode]++
		if p.FramesPerSec <= 0 {
			t.Errorf("%s w=%d: frames/s = %f", p.Mode, p.Workers, p.FramesPerSec)
		}
		if p.GOMAXPROCS != 1 {
			t.Errorf("%s w=%d: gomaxprocs = %d, want 1", p.Mode, p.Workers, p.GOMAXPROCS)
		}
	}
	for _, mode := range []string{"frame", "burst", "ring"} {
		if modes[mode] != 2 {
			t.Errorf("mode %s has %d points, want 2", mode, modes[mode])
		}
	}
	if res.NumCPU < 2 && res.Warning == "" {
		t.Error("cores < max workers but no warning set")
	}
	if tbl.ID != "E12" || len(tbl.Rows) != len(res.Points) {
		t.Errorf("table: id=%s rows=%d points=%d", tbl.ID, len(tbl.Rows), len(res.Points))
	}
}

func TestE14QuickFailover(t *testing.T) {
	e14Logf = t.Logf
	defer func() { e14Logf = nil }()
	tbl, res, err := E14ClusterFailover(E14Config{
		Switches:     2,
		Rules:        4,
		LoadDuration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct {
		name string
		f    E14Failover
	}{{"crash", res.Crash}, {"partition", res.Partition}} {
		if !f.f.Converged {
			t.Fatalf("%s scenario did not converge", f.name)
		}
		if f.f.Takeovers != uint64(res.Switches) {
			t.Errorf("%s: takeovers = %d, want %d", f.name, f.f.Takeovers, res.Switches)
		}
		// The standby must flush exactly the dead master's orphans —
		// one per switch — and adopt every intent rule in place.
		if f.f.StaleFlushed != uint64(res.Switches) {
			t.Errorf("%s: stale flushed = %d, want %d", f.name, f.f.StaleFlushed, res.Switches)
		}
		if f.f.RulesRetained != uint64(res.Switches*res.Rules) {
			t.Errorf("%s: retained = %d, want %d", f.name, f.f.RulesRetained, res.Switches*res.Rules)
		}
		if f.f.TakeoverWallMS <= 0 {
			t.Errorf("%s: timings missing: %+v", f.name, f.f)
		}
	}
	// A crash resets TCP, so sessions may detect instantly without a
	// probe miss (DetectMS 0); a partition blackholes frames, so only
	// the echo prober can notice — detection must be probe-paced.
	if res.Partition.DetectMS <= 0 {
		t.Errorf("partition: detect = %vms, want > 0", res.Partition.DetectMS)
	}
	// Only the partition scenario heals and observes stand-downs.
	if res.Partition.Deposals != uint64(res.Switches) {
		t.Errorf("deposals = %d, want %d", res.Partition.Deposals, res.Switches)
	}
	if res.SingleEPS <= 0 || res.ClusterEPS <= 0 {
		t.Errorf("throughput missing: single=%f cluster=%f", res.SingleEPS, res.ClusterEPS)
	}
	if tbl.ID != "E14" || len(tbl.Rows) != 2 {
		t.Errorf("table: id=%s rows=%d", tbl.ID, len(tbl.Rows))
	}
}
