package experiments

import (
	"fmt"
	"testing"

	"repro/internal/packet"
)

// buildUDPFrame builds a frame of roughly the requested size.
func buildUDPFrame(size int) []byte {
	payload := size - packet.EthernetHeaderLen - packet.IPv4MinHeaderLen - packet.UDPHeaderLen
	if payload < 0 {
		payload = 0
	}
	b := packet.NewBuffer(64)
	b.Append(payload)
	udp := packet.UDP{SrcPort: 5353, DstPort: 53}
	udp.SerializeToWithChecksum(b, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 0, 2})
	ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
		Src: packet.IPv4Addr{10, 0, 0, 1}, Dst: packet.IPv4Addr{10, 0, 0, 2}}
	ip.SerializeTo(b)
	eth := packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 2},
		Src: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4}
	eth.SerializeTo(b)
	return append([]byte(nil), b.Bytes()...)
}

// E6Codec measures the packet substrate: decode, decode+flow-key, and
// full-stack serialize, per frame size, with allocations per op.
// Shape: zero allocations on the decode paths; decode throughput in
// the millions per second per core for small frames.
func E6Codec() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "packet codec throughput",
		Header: []string{"frame", "op", "ns/op", "allocs/op", "Mops/s"},
		Notes:  []string{"expected shape: 0 allocs/op on decode; small-frame decode > 10 Mops/s"},
	}
	sizes := []int{64, 512, 1500}
	for _, size := range sizes {
		wire := buildUDPFrame(size)
		label := fmt.Sprintf("%dB", size)

		decode := testing.Benchmark(func(b *testing.B) {
			var f packet.Frame
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := packet.Decode(wire, &f); err != nil {
					b.Fatal(err)
				}
			}
		})
		addBenchRow(t, label, "decode", decode)

		flowkey := testing.Benchmark(func(b *testing.B) {
			var f packet.Frame
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := packet.Decode(wire, &f); err != nil {
					b.Fatal(err)
				}
				k := packet.ExtractFlowKey(&f)
				_ = k.FastHash()
			}
		})
		addBenchRow(t, label, "decode+flowkey", flowkey)

		payload := size - 42
		if payload < 0 {
			payload = 0
		}
		serialize := testing.Benchmark(func(b *testing.B) {
			buf := packet.NewBuffer(64)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				buf.Append(payload)
				udp := packet.UDP{SrcPort: 1, DstPort: 2}
				udp.SerializeTo(buf)
				ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP}
				ip.SerializeTo(buf)
				eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
				eth.SerializeTo(buf)
			}
		})
		addBenchRow(t, label, "serialize", serialize)
	}
	return t
}

func addBenchRow(t *Table, frame, op string, r testing.BenchmarkResult) {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	mops := 0.0
	if ns > 0 {
		mops = 1000 / ns
	}
	t.AddRow(frame, op, f1(ns), fmt.Sprintf("%d", r.AllocsPerOp()), f2(mops))
}
