package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
)

// E12Config parameterizes the burst-mode datapath scaling experiment.
type E12Config struct {
	Workers []int         // worker counts to sweep (default 1,2,4)
	Procs   []int         // GOMAXPROCS values to sweep (default 1 and NumCPU when >1)
	Burst   int           // frames per burst (default 32)
	Measure time.Duration // wall time per point (default 500ms)
}

// E12Point is one measured (mode, GOMAXPROCS, workers) cell.
type E12Point struct {
	Mode         string  `json:"mode"` // "frame", "burst" or "ring"
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Workers      int     `json:"workers"`
	Burst        int     `json:"burst"`
	FramesPerSec float64 `json:"frames_per_sec"`
	SpeedupVs1   float64 `json:"speedup_vs_1"` // vs workers=1, same mode and GOMAXPROCS
}

// E12Result is the machine-readable output (BENCH_e12.json). Unlike the
// original E7 harness, GOMAXPROCS is swept explicitly and recorded per
// point, and Warning is set whenever the host cannot actually run the
// requested parallelism — the E7 blind spot where a single-core runner
// silently reported meaningless worker scaling.
type E12Result struct {
	NumCPU    int        `json:"num_cpu"`
	MeasureMS int64      `json:"measure_ms"`
	Warning   string     `json:"warning,omitempty"`
	Points    []E12Point `json:"points"`
}

// E12BurstScaling compares the three ingress disciplines end to end:
// per-frame HandleFrame calls ("frame"), direct batched pipeline walks
// ("burst"), and the full run-to-completion path through per-port
// ingress rings and a WorkerPool ("ring"). Each is swept over worker
// count and GOMAXPROCS; speedups are computed within a (mode, procs)
// column so batching gains and core scaling are never conflated.
func E12BurstScaling(cfg E12Config) (*Table, *E12Result, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4}
	}
	if len(cfg.Procs) == 0 {
		cfg.Procs = []int{1}
		if n := runtime.NumCPU(); n > 1 {
			cfg.Procs = append(cfg.Procs, n)
		}
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 32
	}
	if cfg.Measure <= 0 {
		cfg.Measure = 500 * time.Millisecond
	}
	maxW := 0
	for _, w := range cfg.Workers {
		if w > maxW {
			maxW = w
		}
	}

	res := &E12Result{NumCPU: runtime.NumCPU(), MeasureMS: cfg.Measure.Milliseconds()}
	if res.NumCPU < maxW {
		res.Warning = fmt.Sprintf(
			"num_cpu=%d < max workers=%d: multi-worker points timeshare cores; speedup_vs_1 reflects scheduling, not scaling",
			res.NumCPU, maxW)
	}
	tbl := &Table{
		ID:     "E12",
		Title:  "burst-mode datapath scaling (frame vs burst vs ring ingress)",
		Header: []string{"mode", "procs", "workers", "burst", "frames/s", "speedup"},
		Notes: []string{fmt.Sprintf("NumCPU=%d; burst=%d frames; speedup within (mode, procs) column",
			res.NumCPU, cfg.Burst)},
	}
	if res.Warning != "" {
		tbl.Notes = append(tbl.Notes, "WARNING: "+res.Warning)
	}

	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, procs := range cfg.Procs {
		runtime.GOMAXPROCS(procs)
		for _, mode := range []string{"frame", "burst", "ring"} {
			base := 0.0
			for _, nw := range cfg.Workers {
				if nw < 1 {
					continue
				}
				fps, err := e12Point(mode, nw, cfg.Burst, cfg.Measure)
				if err != nil {
					return nil, nil, err
				}
				if base == 0 {
					base = fps
				}
				pt := E12Point{Mode: mode, GOMAXPROCS: procs, Workers: nw, Burst: cfg.Burst,
					FramesPerSec: fps, SpeedupVs1: fps / base}
				res.Points = append(res.Points, pt)
				tbl.AddRow(mode, fmt.Sprintf("%d", procs), fmt.Sprintf("%d", nw),
					fmt.Sprintf("%d", cfg.Burst), f0(fps), f2(pt.SpeedupVs1)+"x")
			}
		}
	}
	return tbl, res, nil
}

// e12Point measures one cell: nw ingress lanes (the E7 fixture: one
// flow, one ingress and one sink port per lane) driven in the given
// mode for the measurement window, returning aggregate frames/s.
func e12Point(mode string, nw, burstN int, measure time.Duration) (float64, error) {
	sw, frames, err := e7Switch(nw)
	if err != nil {
		return 0, err
	}
	switch mode {
	case "frame", "burst":
		var stop atomic.Bool
		counts := make([]uint64, nw)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				in, fr := uint32(w+1), frames[w]
				var n uint64
				if mode == "frame" {
					for !stop.Load() {
						sw.HandleFrame(in, fr)
						n++
					}
				} else {
					batch := make([][]byte, burstN)
					for i := range batch {
						batch[i] = fr
					}
					for !stop.Load() {
						sw.HandleBurst(in, batch)
						n += uint64(burstN)
					}
				}
				counts[w] = n
			}(w)
		}
		time.Sleep(measure)
		stop.Store(true)
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		var total uint64
		for _, n := range counts {
			total += n
		}
		return float64(total) / elapsed, nil
	case "ring":
		wp := dataplane.NewWorkerPool(sw, dataplane.WorkerPoolConfig{
			Workers: nw, RingSize: 1024, Burst: burstN})
		for w := 0; w < nw; w++ {
			wp.AddPort(uint32(w + 1))
		}
		wp.Start()
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := wp.Ring(uint32(w + 1))
				fr := frames[w]
				for !stop.Load() {
					if !r.Enqueue(fr) {
						// Ring full: yield instead of spinning the quantum
						// away dropping — essential when producer and worker
						// timeshare one core.
						runtime.Gosched()
					}
				}
			}(w)
		}
		start := time.Now()
		before := wp.Stats().Frames
		time.Sleep(measure)
		after := wp.Stats().Frames
		elapsed := time.Since(start).Seconds()
		stop.Store(true)
		wg.Wait()
		wp.Stop()
		return float64(after-before) / elapsed, nil
	}
	return 0, fmt.Errorf("e12: unknown mode %q", mode)
}
