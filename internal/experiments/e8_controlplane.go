package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/cbench"
	"repro/internal/controller"
)

// E8Config parameterizes the control-plane scaling experiment.
type E8Config struct {
	SwitchCounts []int         // e.g. 1,4,16,64
	Window       int           // outstanding packet-ins per switch
	Duration     time.Duration // per configuration per mode
	Workers      int           // sharded-mode dispatch workers (default max(4, GOMAXPROCS))
}

// E8Point is one measured switch count: the same cbench load answered
// by the serial controller (one dispatch worker, per-message flush)
// and by the sharded one (N workers, coalesced writes).
type E8Point struct {
	Switches     int     `json:"switches"`
	SerialRPS    float64 `json:"serial_rps"`
	ShardedRPS   float64 `json:"sharded_rps"`
	Speedup      float64 `json:"speedup"`
	SerialP50MS  float64 `json:"serial_p50_ms"`
	SerialP99MS  float64 `json:"serial_p99_ms"`
	ShardedP50MS float64 `json:"sharded_p50_ms"`
	ShardedP99MS float64 `json:"sharded_p99_ms"`
}

// E8Result is the machine-readable output (BENCH_e8.json). As with E7,
// scaling is bounded by GOMAXPROCS: on a single-core host the serial
// and sharded dispatchers timeshare one CPU and speedup hovers around
// 1.0 — the claim there is "no collapse" (sharding and coalescing cost
// nothing when cores are absent). On a multicore runner the sharded
// dispatcher's responses/s grows with switch count while the serial
// one pins at one core.
type E8Result struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Workers    int       `json:"workers"`
	Window     int       `json:"window"`
	DurationMS int64     `json:"duration_ms"`
	Points     []E8Point `json:"points"`
}

// e8Run drives one cbench load against a fresh controller.
func e8Run(cfg controller.Config, switches, window int, d time.Duration) (cbench.Result, error) {
	ctl, err := controller.New(cfg)
	if err != nil {
		return cbench.Result{}, err
	}
	defer ctl.Close()
	ctl.Use(apps.NewLearningSwitch())
	return cbench.Run(cbench.Config{
		Addr:     ctl.Addr(),
		Switches: switches,
		Window:   window,
		Duration: d,
	})
}

// E8ControlPlaneScaling sweeps cbench switch counts against the serial
// dispatcher (DispatchWorkers=1, per-message flush — the pre-sharding
// controller) and the sharded one (DPID-sharded workers, coalesced zof
// writes), reporting responses/s and latency quantiles for both.
func E8ControlPlaneScaling(cfg E8Config) (*Table, *E8Result, error) {
	if len(cfg.SwitchCounts) == 0 {
		cfg.SwitchCounts = []int{1, 4, 16, 64}
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers < 4 {
			cfg.Workers = 4
		}
	}
	res := &E8Result{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    cfg.Workers,
		Window:     cfg.Window,
		DurationMS: cfg.Duration.Milliseconds(),
	}
	tbl := &Table{
		ID:     "E8",
		Title:  "control-plane scaling: serial vs sharded dispatch (cbench, learning app)",
		Header: []string{"switches", "serial rps", "sharded rps", "speedup", "serial p50/p99", "sharded p50/p99"},
		Notes: []string{
			fmt.Sprintf("serial = 1 worker + per-message flush; sharded = %d workers + coalesced writes", cfg.Workers),
			fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d; speedup is bounded by available cores (≈1.0 on one core)",
				res.GOMAXPROCS, res.NumCPU),
			fmt.Sprintf("window=%d outstanding packet-ins per switch, %v per point per mode", cfg.Window, cfg.Duration),
		},
	}

	serialCfg := controller.Config{
		EventQueue:      1 << 16,
		DispatchWorkers: 1,
		FlushDelay:      -1, // per-message flush: the pre-sharding controller
	}
	shardedCfg := controller.Config{
		EventQueue:      1 << 16,
		DispatchWorkers: cfg.Workers,
		FlushDelay:      0, // flush-on-idle coalescing
	}

	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	for _, n := range cfg.SwitchCounts {
		ser, err := e8Run(serialCfg, n, cfg.Window, cfg.Duration)
		if err != nil {
			return nil, nil, fmt.Errorf("E8 serial with %d switches: %w", n, err)
		}
		shd, err := e8Run(shardedCfg, n, cfg.Window, cfg.Duration)
		if err != nil {
			return nil, nil, fmt.Errorf("E8 sharded with %d switches: %w", n, err)
		}
		pt := E8Point{
			Switches:     n,
			SerialRPS:    ser.PerSecond(),
			ShardedRPS:   shd.PerSecond(),
			SerialP50MS:  ms(ser.Latency.Quantile(0.50)),
			SerialP99MS:  ms(ser.Latency.Quantile(0.99)),
			ShardedP50MS: ms(shd.Latency.Quantile(0.50)),
			ShardedP99MS: ms(shd.Latency.Quantile(0.99)),
		}
		if pt.SerialRPS > 0 {
			pt.Speedup = pt.ShardedRPS / pt.SerialRPS
		}
		res.Points = append(res.Points, pt)
		tbl.AddRow(
			fmt.Sprintf("%d", n),
			f0(pt.SerialRPS),
			f0(pt.ShardedRPS),
			f2(pt.Speedup)+"x",
			ser.Latency.Quantile(0.50).String()+"/"+ser.Latency.Quantile(0.99).String(),
			shd.Latency.Quantile(0.50).String()+"/"+shd.Latency.Quantile(0.99).String(),
		)
	}
	return tbl, res, nil
}
