package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/dataplane"
	"repro/internal/netem"
	"repro/internal/zof"
)

// E14Config parameterizes the controller-cluster failover experiment.
type E14Config struct {
	Switches          int           // switches across the cluster (default 4)
	Rules             int           // intent rules per switch (default 8)
	LeaseTTL          time.Duration // mastership lease TTL (default 300ms)
	HeartbeatInterval time.Duration // east-west heartbeat period (default 60ms)
	ProbeInterval     time.Duration // switch-side session probe period (default 20ms)
	ProbeMisses       int           // probe misses before the session evicts (default 2)
	LoadDuration      time.Duration // packet-in throughput window (default 500ms)
}

// E14Failover is one master-loss scenario measured end to end.
type E14Failover struct {
	// TakeoverWallMS is fault onset → every orphaned switch converged
	// on its new master (intent rules present under the new epoch,
	// stale rules flushed).
	TakeoverWallMS float64 `json:"takeover_wall_ms"`
	// DetectMS is the mean switch-side detection latency (first missed
	// echo probe → session eviction) across failed-over sessions. Zero
	// when the fault reset the TCP channel and sessions detected by
	// read error before any probe could miss (crash scenario).
	DetectMS float64 `json:"detect_ms"`
	// ClaimMS is the new master's own claim latency: lease claim →
	// switch activated (role fenced, apps reinstalling).
	ClaimMS   float64 `json:"claim_ms"`
	Takeovers uint64  `json:"takeovers"`
	// Deposals counts stand-downs on the old master after the
	// partition heals (partition scenario only).
	Deposals uint64 `json:"deposals"`
	// StaleFlushed counts rules the epoch-selective reconcile removed
	// at takeover (the dead master's orphans); RulesRetained is the
	// intent that survived — adopted in place, never wiped.
	StaleFlushed  uint64 `json:"stale_flushed"`
	RulesRetained uint64 `json:"rules_retained"`
	Converged     bool   `json:"converged"`
}

// E14Result is the machine-readable output (BENCH_e14.json).
type E14Result struct {
	Switches    int          `json:"switches"`
	Rules       int          `json:"rules"`
	LeaseTTLMS  float64      `json:"lease_ttl_ms"`
	HeartbeatMS float64      `json:"heartbeat_ms"`
	Crash       E14Failover  `json:"crash"`
	Partition   E14Failover  `json:"partition"`
	// Aggregate packet-in dispatch throughput, switches spread across
	// the two-instance cluster vs all homed on a single controller.
	SingleEPS  float64 `json:"single_eps"`
	ClusterEPS float64 `json:"cluster_eps"`
	SpeedupX   float64 `json:"speedup_x"`
}

// e14Installer pushes n intent rules on every SwitchUp — the app-level
// state that must survive a master change. Every instance runs the
// same app, so intent is replicated by construction; only the cookie
// epoch differs per instance.
type e14Installer struct{ n int }

func (a e14Installer) Name() string { return "e14-installer" }
func (a e14Installer) SwitchUp(c *controller.Controller, ev controller.SwitchUp) {
	sc, ok := c.Switch(ev.DPID)
	if !ok {
		return
	}
	for i := 0; i < a.n; i++ {
		m := zof.MatchAll()
		m.Wildcards &^= zof.WEthSrc
		m.EthSrc[5] = byte(i + 1)
		sc.InstallFlow(&zof.FlowMod{Command: zof.FlowAdd, Match: m,
			Priority: 100, Cookie: uint64(i + 1), BufferID: zof.NoBuffer})
	}
}
func (a e14Installer) SwitchDown(c *controller.Controller, ev controller.SwitchDown) {}

// e14Counter consumes packet-ins and counts them (dispatch throughput).
type e14Counter struct{ n *atomic.Uint64 }

func (a e14Counter) Name() string { return "e14-counter" }
func (a e14Counter) PacketIn(c *controller.Controller, ev controller.PacketInEvent) bool {
	a.n.Add(1)
	return true
}

// e14Logf, when set from a test, receives the cluster runtime's logs
// (takeovers, deposals, reconciles). Nil in benchmark runs.
var e14Logf func(string, ...any)

// e14Member is one cluster instance: a controller in gated-mastership
// mode plus its lease/replication runtime.
type e14Member struct {
	ctl *controller.Controller
	in  *cluster.Instance
}

func e14NewMember(id, size int, cfg E14Config, apps ...controller.App) (*e14Member, error) {
	hooks := &cluster.Hooks{}
	ctl, err := controller.New(controller.Config{
		EpochOffset: uint64(id),
		EpochStride: uint64(size),
		Mastership:  hooks,
	})
	if err != nil {
		return nil, err
	}
	ctl.Use(apps...)
	in, err := cluster.New(cluster.Config{
		ID:                id,
		Controller:        ctl,
		LeaseTTL:          cfg.LeaseTTL,
		HeartbeatInterval: cfg.HeartbeatInterval,
		// Keep a partitioned peer cheap: every east-west redial stalls
		// the tick loop for at most this long.
		DialTimeout: 150 * time.Millisecond,
		Logf:        e14Logf,
	})
	if err != nil {
		ctl.Close()
		return nil, err
	}
	hooks.Bind(in)
	return &e14Member{ctl: ctl, in: in}, nil
}

func (m *e14Member) stop() {
	m.in.Close()
	m.ctl.Close()
}

func e14Switch(dpid uint64) *dataplane.Switch {
	sw := dataplane.NewSwitch(dataplane.Config{DPID: dpid})
	sw.AddPort(1, "in", 1000)
	sw.AddPort(2, "out", 1000).SetTx(func([]byte) {})
	return sw
}

// e14Converged reports whether dpid's table at ctl holds exactly want
// rules, all under the live session's epoch.
func e14Converged(ctl *controller.Controller, dpid uint64, want int) bool {
	sc, ok := ctl.Switch(dpid)
	if !ok || !sc.Active() {
		return false
	}
	rep, err := sc.Stats(&zof.StatsRequest{
		Kind: zof.StatsFlow, TableID: 0xff, Match: zof.MatchAll(),
	}, time.Second)
	if err != nil || len(rep.Flows) != want {
		return false
	}
	for _, f := range rep.Flows {
		if controller.CookieEpoch(f.Cookie) != sc.Epoch() {
			return false
		}
	}
	return true
}

// e14Describe summarizes per-switch table state for failure messages.
func e14Describe(ctl *controller.Controller, dpids []uint64) string {
	var b []byte
	for _, d := range dpids {
		sc, ok := ctl.Switch(d)
		if !ok {
			b = fmt.Appendf(b, "[%d: unregistered]", d)
			continue
		}
		rep, err := sc.Stats(&zof.StatsRequest{
			Kind: zof.StatsFlow, TableID: 0xff, Match: zof.MatchAll(),
		}, time.Second)
		if err != nil {
			b = fmt.Appendf(b, "[%d: active=%v stats: %v]", d, sc.Active(), err)
			continue
		}
		epochs := map[uint64]int{}
		for _, f := range rep.Flows {
			epochs[controller.CookieEpoch(f.Cookie)]++
		}
		b = fmt.Appendf(b, "[%d: active=%v epoch=%d flows=%d byEpoch=%v]",
			d, sc.Active(), sc.Epoch(), len(rep.Flows), epochs)
	}
	return string(b)
}

func e14WaitAll(ctl *controller.Controller, dpids []uint64, want int, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		all := true
		for _, d := range dpids {
			if !e14Converged(ctl, d, want) {
				all = false
				break
			}
		}
		if all {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// e14Frame builds a table-miss UDP frame from a stable population of
// 64 hosts: after warmup every injection is a pure packet-in dispatch,
// with no host-learning churn feeding the replication stream (e9Frame
// mints a fresh src MAC per frame, which would turn a throughput
// measurement into a host-delta broadcast benchmark).
func e14Frame(i int) []byte {
	return e9Frame(i % 64)
}

// e14Traffic drives miss-frames into every switch until stopped —
// packet-ins while a master is active, forwarding-path load while the
// control plane is changing hands.
func e14Traffic(switches []*dataplane.Switch, gap time.Duration) (stop func()) {
	quit := make(chan struct{})
	var wg sync.WaitGroup
	for _, sw := range switches {
		wg.Add(1)
		go func(sw *dataplane.Switch) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-quit:
					return
				default:
				}
				sw.HandleFrame(1, e14Frame(i))
				if gap > 0 {
					time.Sleep(gap)
				}
			}
		}(sw)
	}
	return func() { close(quit); wg.Wait() }
}

// e14Orphan installs one rule per switch outside any app's intent on
// the current master: after failover nothing reinstalls it, so it
// survives only if reconciliation fails to flush stale epochs.
func e14Orphan(ctl *controller.Controller, dpids []uint64) error {
	for _, d := range dpids {
		sc, ok := ctl.Switch(d)
		if !ok {
			return fmt.Errorf("switch %d not registered", d)
		}
		m := zof.MatchAll()
		m.Wildcards &^= zof.WEthSrc
		m.EthSrc[4], m.EthSrc[5] = 0xEE, byte(d)
		if err := sc.InstallFlow(&zof.FlowMod{Command: zof.FlowAdd, Match: m,
			Priority: 50, Cookie: 0x9900 + d, BufferID: zof.NoBuffer}); err != nil {
			return err
		}
	}
	return nil
}

// e14Scenario runs one master-loss lifecycle: build a two-instance
// cluster, home every switch on instance 0, converge, then take the
// master away — by crash (instance killed outright) or by partition
// (instance alive but unreachable: east-west and southbound
// blackholed, then healed to observe the stand-down).
func e14Scenario(cfg E14Config, partition bool) (E14Failover, error) {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	var out E14Failover

	m0, err := e14NewMember(0, 2, cfg, e14Installer{n: cfg.Rules})
	if err != nil {
		return out, err
	}
	defer m0.stop()
	m1, err := e14NewMember(1, 2, cfg, e14Installer{n: cfg.Rules})
	if err != nil {
		return out, err
	}
	defer m1.stop()

	// East-west and (for the partition scenario) instance 0's
	// southbound ride netem proxies so one Cut isolates the master.
	pe01, err := netem.NewControlProxy(m1.in.Addr())
	if err != nil {
		return out, err
	}
	defer pe01.Close()
	pe10, err := netem.NewControlProxy(m0.in.Addr())
	if err != nil {
		return out, err
	}
	defer pe10.Close()
	m0.in.Join(map[int]string{1: pe01.Addr()})
	m1.in.Join(map[int]string{0: pe10.Addr()})
	south, err := netem.NewControlProxy(m0.ctl.Addr())
	if err != nil {
		return out, err
	}
	defer south.Close()
	part := netem.NewPartition(pe01, pe10, south)

	firstEndpoint := m0.ctl.Addr()
	if partition {
		firstEndpoint = south.Addr()
	}
	dpids := make([]uint64, cfg.Switches)
	switches := make([]*dataplane.Switch, cfg.Switches)
	sessions := make([]*dataplane.Session, cfg.Switches)
	for i := range switches {
		dpids[i] = uint64(i + 1)
		switches[i] = e14Switch(dpids[i])
		sessions[i] = dataplane.StartSession(switches[i], dataplane.SessionConfig{
			Addrs:         []string{firstEndpoint, m1.ctl.Addr()},
			MinBackoff:    10 * time.Millisecond,
			MaxBackoff:    100 * time.Millisecond,
			DialTimeout:   300 * time.Millisecond,
			ProbeInterval: cfg.ProbeInterval,
			ProbeMisses:   cfg.ProbeMisses,
			Seed:          int64(i + 1),
		})
		defer sessions[i].Close()
	}
	if !e14WaitAll(m0.ctl, dpids, cfg.Rules, 10*time.Second) {
		return out, fmt.Errorf("initial convergence on instance 0 failed")
	}
	if err := e14Orphan(m0.ctl, dpids); err != nil {
		return out, err
	}
	if !e14WaitAll(m0.ctl, dpids, cfg.Rules+1, 5*time.Second) {
		return out, fmt.Errorf("orphan install did not settle")
	}

	stopTraffic := e14Traffic(switches, 500*time.Microsecond)
	defer stopTraffic()

	// Take the master away.
	t0 := time.Now()
	if partition {
		part.Cut()
	} else {
		m0.stop()
	}
	if !e14WaitAll(m1.ctl, dpids, cfg.Rules, 20*time.Second) {
		return out, fmt.Errorf("takeover convergence on instance 1 failed: %s",
			e14Describe(m1.ctl, dpids))
	}
	out.TakeoverWallMS = ms(time.Since(t0))
	out.Takeovers = m1.in.Takeovers()
	out.ClaimMS = ms(m1.in.LastTakeover())
	var det time.Duration
	for _, s := range sessions {
		det += s.LastDetection()
	}
	out.DetectMS = ms(det / time.Duration(len(sessions)))
	stale, _ := m1.ctl.Metrics().Value("controller.liveness.stale_flows")
	out.StaleFlushed = uint64(stale)
	out.RulesRetained = uint64(cfg.Switches * cfg.Rules)

	if partition {
		// Heal: the deposed master learns the higher terms from the
		// first heartbeats through and stands down everywhere.
		part.Heal()
		end := time.Now().Add(10 * time.Second)
		for m0.in.Deposals() < uint64(cfg.Switches) && time.Now().Before(end) {
			time.Sleep(2 * time.Millisecond)
		}
		out.Deposals = m0.in.Deposals()
	}
	out.Converged = true
	return out, nil
}

// e14Throughput measures aggregate packet-in dispatch: S switches all
// homed on one controller, then spread across a two-instance cluster.
func e14Throughput(cfg E14Config) (single, clustered float64, err error) {
	run := func(members []*e14Member, counters []*atomic.Uint64, rotate bool) (float64, error) {
		dpids := make([]uint64, cfg.Switches)
		switches := make([]*dataplane.Switch, cfg.Switches)
		for i := range switches {
			dpids[i] = uint64(i + 1)
			switches[i] = e14Switch(dpids[i])
			addrs := make([]string, len(members))
			for j := range members {
				k := j
				if rotate {
					k = (i + j) % len(members)
				}
				addrs[j] = members[k].ctl.Addr()
			}
			sess := dataplane.StartSession(switches[i], dataplane.SessionConfig{
				Addrs:       addrs,
				MinBackoff:  10 * time.Millisecond,
				DialTimeout: time.Second,
				Seed:        int64(i + 1),
			})
			defer sess.Close()
		}
		deadline := time.Now().Add(10 * time.Second)
		for _, d := range dpids {
			homed := false
			for !homed && time.Now().Before(deadline) {
				for _, m := range members {
					if e14Converged(m.ctl, d, cfg.Rules) {
						homed = true
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
			if !homed {
				return 0, fmt.Errorf("switch %d never converged on a master", d)
			}
		}
		var before uint64
		for _, c := range counters {
			before += c.Load()
		}
		stop := e14Traffic(switches, 0)
		time.Sleep(cfg.LoadDuration)
		stop()
		var after uint64
		for _, c := range counters {
			after += c.Load()
		}
		return float64(after-before) / cfg.LoadDuration.Seconds(), nil
	}

	// Single instance: a one-member "cluster" carrying every switch.
	c0 := &atomic.Uint64{}
	solo, err := e14NewMember(0, 1, cfg, e14Installer{n: cfg.Rules}, e14Counter{n: c0})
	if err != nil {
		return 0, 0, err
	}
	single, err = run([]*e14Member{solo}, []*atomic.Uint64{c0}, false)
	solo.stop()
	if err != nil {
		return 0, 0, err
	}

	// Two instances, switches spread across them.
	ca, cb := &atomic.Uint64{}, &atomic.Uint64{}
	ma, err := e14NewMember(0, 2, cfg, e14Installer{n: cfg.Rules}, e14Counter{n: ca})
	if err != nil {
		return 0, 0, err
	}
	defer ma.stop()
	mb, err := e14NewMember(1, 2, cfg, e14Installer{n: cfg.Rules}, e14Counter{n: cb})
	if err != nil {
		return 0, 0, err
	}
	defer mb.stop()
	peers := map[int]string{0: ma.in.Addr(), 1: mb.in.Addr()}
	ma.in.Join(peers)
	mb.in.Join(peers)
	clustered, err = run([]*e14Member{ma, mb}, []*atomic.Uint64{ca, cb}, true)
	return single, clustered, err
}

// E14ClusterFailover measures the distributed-control contract from
// DESIGN.md "Cluster failover contract": lease-based mastership with
// term fencing, replicated-NIB warm standbys, and epoch-selective
// reconciliation, under both a crashed and a partitioned master, plus
// the aggregate dispatch throughput the second instance buys.
func E14ClusterFailover(cfg E14Config) (*Table, *E14Result, error) {
	if cfg.Switches <= 0 {
		cfg.Switches = 4
	}
	if cfg.Rules <= 0 {
		cfg.Rules = 8
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 300 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 60 * time.Millisecond
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	if cfg.ProbeMisses <= 0 {
		cfg.ProbeMisses = 2
	}
	if cfg.LoadDuration <= 0 {
		cfg.LoadDuration = 500 * time.Millisecond
	}
	res := &E14Result{
		Switches:    cfg.Switches,
		Rules:       cfg.Rules,
		LeaseTTLMS:  float64(cfg.LeaseTTL.Nanoseconds()) / 1e6,
		HeartbeatMS: float64(cfg.HeartbeatInterval.Nanoseconds()) / 1e6,
	}
	var err error
	if res.Crash, err = e14Scenario(cfg, false); err != nil {
		return nil, nil, fmt.Errorf("E14 crash: %w", err)
	}
	if res.Partition, err = e14Scenario(cfg, true); err != nil {
		return nil, nil, fmt.Errorf("E14 partition: %w", err)
	}
	if res.SingleEPS, res.ClusterEPS, err = e14Throughput(cfg); err != nil {
		return nil, nil, fmt.Errorf("E14 throughput: %w", err)
	}
	if res.SingleEPS > 0 {
		res.SpeedupX = res.ClusterEPS / res.SingleEPS
	}

	tbl := &Table{
		ID:     "E14",
		Title:  "controller cluster: master failover and aggregate dispatch",
		Header: []string{"scenario", "takeover", "detect", "claim", "takeovers", "deposals", "flushed", "retained", "ok"},
		Notes: []string{
			fmt.Sprintf("%d switches × %d rules; lease TTL %v, heartbeat %v, session probe %v × %d misses",
				cfg.Switches, cfg.Rules, cfg.LeaseTTL, cfg.HeartbeatInterval, cfg.ProbeInterval, cfg.ProbeMisses),
			"takeover = fault onset → all switches converged on the new master's epoch, under traffic",
			"flushed counts only the dead master's orphan rules — intent is adopted in place, never wiped",
			fmt.Sprintf("aggregate dispatch: single %.0f ev/s, cluster %.0f ev/s (%.2fx)",
				res.SingleEPS, res.ClusterEPS, res.SpeedupX),
		},
	}
	row := func(name string, f E14Failover) {
		tbl.AddRow(name,
			fmt.Sprintf("%.1fms", f.TakeoverWallMS),
			fmt.Sprintf("%.1fms", f.DetectMS),
			fmt.Sprintf("%.1fms", f.ClaimMS),
			fmt.Sprintf("%d", f.Takeovers),
			fmt.Sprintf("%d", f.Deposals),
			fmt.Sprintf("%d", f.StaleFlushed),
			fmt.Sprintf("%d", f.RulesRetained),
			fmt.Sprintf("%v", f.Converged),
		)
	}
	row("crash", res.Crash)
	row("partition", res.Partition)
	return tbl, res, nil
}
