package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/cbench"
	"repro/internal/controller"
	"repro/internal/obs"
)

// E11Config parameterizes the observability-overhead experiment.
type E11Config struct {
	Switches    int           // cbench emulated switches (default 16)
	Window      int           // outstanding packet-ins per switch (default 8)
	Duration    time.Duration // per tracing mode (default 2s)
	SampleEvery int           // sampled-mode decimation (default obs.DefaultSampleEvery)
	TraceBuffer int           // flight-recorder ring capacity (default 1024)
}

// E11Point is one tracing mode under the same cbench load.
type E11Point struct {
	Mode        string  `json:"mode"`
	RPS         float64 `json:"rps"`
	OverheadPct float64 `json:"overhead_pct"` // throughput lost vs mode=off
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	Recorded    int     `json:"recorded_events"`
	AppP95US    float64 `json:"app_p95_us"` // traced app-handler latency (0 when off)
}

// E11Result is the machine-readable output (BENCH_e11.json). The claim
// under test: always-on observability is affordable. Off-mode tracing
// costs one atomic load per event; sampled mode stamps 1/N events and
// should stay within a few percent of baseline; even full tracing
// (every event timestamped twice, per-app spans recorded into the
// ring) must cost well under 15% of dispatch throughput.
type E11Result struct {
	GOMAXPROCS  int        `json:"gomaxprocs"`
	NumCPU      int        `json:"num_cpu"`
	Switches    int        `json:"switches"`
	Window      int        `json:"window"`
	DurationMS  int64      `json:"duration_ms"`
	SampleEvery int        `json:"sample_every"`
	Points      []E11Point `json:"points"`
}

// e11Run drives one cbench load against a fresh controller with the
// given tracing mode, reporting throughput plus what the recorder and
// the per-app latency histogram captured.
func e11Run(cfg E11Config, mode obs.TraceMode) (cbench.Result, int, float64, error) {
	ctl, err := controller.New(controller.Config{
		EventQueue:  1 << 16,
		TraceBuffer: cfg.TraceBuffer,
	})
	if err != nil {
		return cbench.Result{}, 0, 0, err
	}
	defer ctl.Close()
	ctl.Use(apps.NewLearningSwitch())
	ctl.Tracing().SetSampleEvery(cfg.SampleEvery)
	ctl.Tracing().SetMode(mode)
	res, err := cbench.Run(cbench.Config{
		Addr:     ctl.Addr(),
		Switches: cfg.Switches,
		Window:   cfg.Window,
		Duration: cfg.Duration,
	})
	if err != nil {
		return cbench.Result{}, 0, 0, err
	}
	recorded := int(ctl.Tracing().Recorded())
	appP95 := 0.0
	if h := ctl.Metrics().Histogram("controller.app.l2-learning.latency"); h != nil {
		appP95 = float64(h.Quantile(0.95).Nanoseconds()) / 1e3
	}
	return res, recorded, appP95, nil
}

// E11ObservabilityOverhead measures the dispatch-throughput cost of
// control-loop tracing: the same cbench load is answered with the
// flight recorder off, sampled (1/N), and full. Baseline is off; the
// other modes report throughput lost against it.
func E11ObservabilityOverhead(cfg E11Config) (*Table, *E11Result, error) {
	if cfg.Switches <= 0 {
		cfg.Switches = 16
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = obs.DefaultSampleEvery
	}
	if cfg.TraceBuffer <= 0 {
		cfg.TraceBuffer = 1024
	}
	res := &E11Result{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Switches:    cfg.Switches,
		Window:      cfg.Window,
		DurationMS:  cfg.Duration.Milliseconds(),
		SampleEvery: cfg.SampleEvery,
	}
	tbl := &Table{
		ID:     "E11",
		Title:  "observability overhead: dispatch throughput vs tracing mode (cbench, learning app)",
		Header: []string{"mode", "rps", "overhead", "p50/p99", "recorded", "app p95"},
		Notes: []string{
			fmt.Sprintf("sampled = every %dth event stamped; full = every event; ring capacity %d",
				cfg.SampleEvery, cfg.TraceBuffer),
			fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d; %d switches, window %d, %v per mode",
				res.GOMAXPROCS, res.NumCPU, cfg.Switches, cfg.Window, cfg.Duration),
			"overhead is throughput lost vs mode=off; targets: sampled <3%, full <15%",
		},
	}

	var baseline float64
	for _, mode := range []obs.TraceMode{obs.TraceOff, obs.TraceSampled, obs.TraceFull} {
		r, recorded, appP95, err := e11Run(cfg, mode)
		if err != nil {
			return nil, nil, fmt.Errorf("E11 mode %s: %w", mode, err)
		}
		pt := E11Point{
			Mode:     mode.String(),
			RPS:      r.PerSecond(),
			P50MS:    float64(r.Latency.Quantile(0.50).Nanoseconds()) / 1e6,
			P99MS:    float64(r.Latency.Quantile(0.99).Nanoseconds()) / 1e6,
			Recorded: recorded,
			AppP95US: appP95,
		}
		if mode == obs.TraceOff {
			baseline = pt.RPS
		} else if baseline > 0 {
			pt.OverheadPct = (baseline - pt.RPS) / baseline * 100
		}
		res.Points = append(res.Points, pt)
		tbl.AddRow(
			pt.Mode,
			f0(pt.RPS),
			f1(pt.OverheadPct)+"%",
			r.Latency.Quantile(0.50).String()+"/"+r.Latency.Quantile(0.99).String(),
			fmt.Sprintf("%d", pt.Recorded),
			f1(pt.AppP95US)+"µs",
		)
	}
	return tbl, res, nil
}
