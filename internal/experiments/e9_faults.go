package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/controller"
	"repro/internal/dataplane"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/zof"
)

// E9Config parameterizes the control-channel recovery experiment.
type E9Config struct {
	ProbeInterval time.Duration   // liveness probe period (default 25ms)
	MissBudgets   []int           // probe miss budgets to sweep (default 1,2,3)
	Backoffs      []time.Duration // session MinBackoff values (default 10ms, 50ms)
	Rules         int             // ACL rules installed as reconcilable state (default 16)
}

// E9Point is one (miss budget, backoff) configuration taken through the
// full failure lifecycle: blackhole → eviction, heal → reconnect +
// flow-state convergence, crash-restart → convergence from an empty
// table.
type E9Point struct {
	MissBudget int     `json:"miss_budget"`
	BackoffMS  float64 `json:"backoff_ms"`
	// DetectMS is the controller's measured detection latency (first
	// missed probe send → eviction); DetectBoundMS is the contract:
	// ProbeInterval × MissBudget.
	DetectMS      float64 `json:"detect_ms"`
	DetectBoundMS float64 `json:"detect_bound_ms"`
	// DetectWallMS is blackhole onset → SwitchDown observed, which adds
	// the wait for the next probe tick to DetectMS.
	DetectWallMS float64 `json:"detect_wall_ms"`
	// ReconnectMS is partition heal → Reconnect SwitchUp observed.
	ReconnectMS float64 `json:"reconnect_ms"`
	// FlapConvergeMS is heal → flow table converged (intended rules
	// present under the live epoch, stale rules flushed) for a
	// control-channel flap that left the table populated.
	FlapConvergeMS float64 `json:"flap_converge_ms"`
	// CrashConvergeMS is restart → converged for a crash-restart that
	// came back with an empty table, under active traffic.
	CrashConvergeMS float64 `json:"crash_converge_ms"`
	// StaleFlushed counts flows reconciliation removed (rules retired
	// while the switch was partitioned).
	StaleFlushed uint64 `json:"stale_flushed"`
	Converged    bool   `json:"converged"`
}

// E9Result is the machine-readable output (BENCH_e9.json).
type E9Result struct {
	ProbeIntervalMS float64   `json:"probe_interval_ms"`
	Rules           int       `json:"rules"`
	Points          []E9Point `json:"points"`
}

// e9Recorder surfaces switch lifecycle events to the driving goroutine.
type e9Recorder struct {
	ups   chan controller.SwitchUp
	downs chan controller.SwitchDown
}

func newE9Recorder() *e9Recorder {
	return &e9Recorder{
		ups:   make(chan controller.SwitchUp, 64),
		downs: make(chan controller.SwitchDown, 64),
	}
}

func (r *e9Recorder) Name() string { return "e9-recorder" }

func (r *e9Recorder) SwitchUp(c *controller.Controller, ev controller.SwitchUp) {
	select {
	case r.ups <- ev:
	default:
	}
}

func (r *e9Recorder) SwitchDown(c *controller.Controller, ev controller.SwitchDown) {
	select {
	case r.downs <- ev:
	default:
	}
}

func (r *e9Recorder) drain() {
	for {
		select {
		case <-r.ups:
		case <-r.downs:
		default:
			return
		}
	}
}

// e9Switch builds a fresh datapath with two ports (traffic in, sink
// out) for DPID 1.
func e9Switch() *dataplane.Switch {
	sw := dataplane.NewSwitch(dataplane.Config{DPID: 1})
	sw.AddPort(1, "in", 1000)
	sw.AddPort(2, "out", 1000).SetTx(func([]byte) {})
	return sw
}

// e9Frame builds a UDP frame whose destination matches none of the ACL
// rules, so every injection is a table miss → packet-in while the
// channel is up (the "active traffic" the recovery runs under).
func e9Frame(i int) []byte {
	buf := packet.NewBuffer(64)
	buf.Append(22)
	src := packet.IPv4Addr{10, 9, byte(i >> 8), byte(i)}
	dst := packet.IPv4Addr{10, 10, 0, 1}
	udp := packet.UDP{SrcPort: uint16(7000 + i%512), DstPort: 53}
	udp.SerializeToWithChecksum(buf, src, dst)
	ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: src, Dst: dst}
	ip.SerializeTo(buf)
	eth := packet.Ethernet{
		Src:       packet.MACFromUint64(0x0A0900000000 | uint64(i&0xffff)),
		Dst:       packet.MACFromUint64(0x0A0A00000001),
		EtherType: packet.EtherTypeIPv4,
	}
	eth.SerializeTo(buf)
	return append([]byte(nil), buf.Bytes()...)
}

// e9Converged reports whether the switch's flow table holds exactly
// want rules, all stamped with the live session's epoch.
func e9Converged(sc *controller.SwitchConn, want int) bool {
	rep, err := sc.Stats(&zof.StatsRequest{
		Kind: zof.StatsFlow, TableID: 0xff, Match: zof.MatchAll(),
	}, time.Second)
	if err != nil || len(rep.Flows) != want {
		return false
	}
	for _, f := range rep.Flows {
		if controller.CookieEpoch(f.Cookie) != sc.Epoch() {
			return false
		}
	}
	return true
}

// e9WaitConverged polls e9Converged until it holds or the deadline
// passes, returning the elapsed time and whether it converged.
func e9WaitConverged(ctl *controller.Controller, want int, since time.Time, deadline time.Duration) (time.Duration, bool) {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if sc, ok := ctl.Switch(1); ok && e9Converged(sc, want) {
			return time.Since(since), true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return time.Since(since), false
}

func e9WaitUp(rec *e9Recorder, timeout time.Duration) (controller.SwitchUp, bool) {
	select {
	case ev := <-rec.ups:
		return ev, true
	case <-time.After(timeout):
		return controller.SwitchUp{}, false
	}
}

func e9WaitDown(rec *e9Recorder, timeout time.Duration) bool {
	select {
	case <-rec.downs:
		return true
	case <-time.After(timeout):
		return false
	}
}

// e9Point runs one configuration through the full lifecycle.
func e9Point(pi time.Duration, misses int, backoff time.Duration, rules int) (E9Point, error) {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	pt := E9Point{
		MissBudget:    misses,
		BackoffMS:     ms(backoff),
		DetectBoundMS: ms(pi * time.Duration(misses)),
	}
	// ProbeTimeout strictly below the interval makes the detection bound
	// hold with margin: the fatal streak's last probe times out before
	// the tick that would start probe budget+1, so eviction lands at
	// interval×(budget-1) + timeout < interval×budget.
	ctl, err := controller.New(controller.Config{
		ProbeInterval: pi,
		ProbeTimeout:  pi * 4 / 5,
		ProbeMisses:   misses,
	})
	if err != nil {
		return pt, err
	}
	defer ctl.Close()
	acl := apps.NewACL()
	rec := newE9Recorder()
	ctl.Use(acl) // before the recorder: an observed SwitchUp implies ACL reinstalled
	ctl.Use(rec)

	proxy, err := netem.NewControlProxy(ctl.Addr())
	if err != nil {
		return pt, err
	}
	defer proxy.Close()

	var target atomic.Pointer[dataplane.Switch]
	target.Store(e9Switch())
	sess := dataplane.StartSession(target.Load(), dataplane.SessionConfig{
		Addr:       proxy.Addr(),
		MinBackoff: backoff,
		Seed:       1,
	})
	defer sess.Close()

	if _, ok := e9WaitUp(rec, 5*time.Second); !ok {
		return pt, fmt.Errorf("initial SwitchUp not observed")
	}
	ids := make([]uint64, 0, rules)
	for i := 0; i < rules; i++ {
		m := zof.MatchAll()
		m.Wildcards &^= zof.WEthDst
		m.EthDst = packet.MACFromUint64(0x0A0000000000 | uint64(i))
		ids = append(ids, acl.Deny(ctl, m))
	}
	if _, ok := e9WaitConverged(ctl, rules, time.Now(), 5*time.Second); !ok {
		return pt, fmt.Errorf("initial rule install did not converge")
	}

	// Active traffic for the whole lifecycle: misses → packet-ins while
	// the channel is up, plain forwarding-path load while it is not.
	stopTraffic := make(chan struct{})
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		for i := 0; ; i++ {
			select {
			case <-stopTraffic:
				return
			default:
			}
			target.Load().HandleFrame(1, e9Frame(i))
			time.Sleep(500 * time.Microsecond)
		}
	}()
	defer func() { close(stopTraffic); <-trafficDone }()

	// Phase 1 — detection: blackhole the control channel (bytes silently
	// discarded, nothing closed: a half-open session) and wait for the
	// liveness prober to evict.
	rec.drain()
	t0 := time.Now()
	proxy.Blackhole(true)
	if !e9WaitDown(rec, pi*time.Duration(misses+4)+2*time.Second) {
		return pt, fmt.Errorf("liveness eviction not observed")
	}
	pt.DetectWallMS = ms(time.Since(t0))
	det, _ := ctl.Metrics().Value("controller.liveness.last_detection_ns")
	pt.DetectMS = ms(time.Duration(det))

	// While partitioned, retire a quarter of the rules. The switch still
	// holds them; only post-reconnect reconciliation can flush them.
	retired := len(ids) / 4
	for _, id := range ids[:retired] {
		acl.Allow(ctl, id)
	}
	want := rules - retired

	// Phase 2 — heal: stop discarding and sever the leaked half-open
	// connection so the session manager redials through the proxy.
	rec.drain()
	proxy.Blackhole(false)
	t1 := time.Now()
	proxy.DropConnections()
	up, ok := e9WaitUp(rec, 10*time.Second)
	if !ok {
		return pt, fmt.Errorf("reconnect SwitchUp not observed")
	}
	if !up.Reconnect {
		return pt, fmt.Errorf("reconnect SwitchUp lacked Reconnect flag")
	}
	pt.ReconnectMS = ms(time.Since(t1))
	flap, ok := e9WaitConverged(ctl, want, t1, 10*time.Second)
	if !ok {
		return pt, fmt.Errorf("flow state did not converge after flap")
	}
	pt.FlapConvergeMS = ms(flap)
	stale, _ := ctl.Metrics().Value("controller.liveness.stale_flows")
	pt.StaleFlushed = uint64(stale)

	// Phase 3 — crash-restart: kill the session and the switch, bring up
	// a new datapath with the same DPID and an empty table, and measure
	// convergence from nothing, still under traffic.
	rec.drain()
	sess.Close()
	if !e9WaitDown(rec, 10*time.Second) {
		return pt, fmt.Errorf("SwitchDown after crash not observed")
	}
	target.Store(e9Switch())
	t2 := time.Now()
	sess2 := dataplane.StartSession(target.Load(), dataplane.SessionConfig{
		Addr:       proxy.Addr(),
		MinBackoff: backoff,
		Seed:       2,
	})
	defer sess2.Close()
	if _, ok := e9WaitUp(rec, 10*time.Second); !ok {
		return pt, fmt.Errorf("post-restart SwitchUp not observed")
	}
	crash, ok := e9WaitConverged(ctl, want, t2, 10*time.Second)
	if !ok {
		return pt, fmt.Errorf("flow state did not converge after restart")
	}
	pt.CrashConvergeMS = ms(crash)
	pt.Converged = true
	return pt, nil
}

// E9FaultRecovery sweeps liveness miss budgets and reconnect backoffs
// through the blackhole → heal → crash-restart lifecycle, reporting
// detection latency against its interval × budget bound, reconnect
// time, and flow-state convergence time (DESIGN.md "Failure model and
// reconnect contract").
func E9FaultRecovery(cfg E9Config) (*Table, *E9Result, error) {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	if len(cfg.MissBudgets) == 0 {
		cfg.MissBudgets = []int{1, 2, 3}
	}
	if len(cfg.Backoffs) == 0 {
		cfg.Backoffs = []time.Duration{10 * time.Millisecond, 50 * time.Millisecond}
	}
	if cfg.Rules <= 0 {
		cfg.Rules = 16
	}
	res := &E9Result{
		ProbeIntervalMS: float64(cfg.ProbeInterval.Nanoseconds()) / 1e6,
		Rules:           cfg.Rules,
	}
	tbl := &Table{
		ID:     "E9",
		Title:  "control-channel fault recovery: detection, reconnect, convergence",
		Header: []string{"misses", "backoff", "detect (bound)", "wall", "reconnect", "flap conv", "crash conv", "stale", "ok"},
		Notes: []string{
			fmt.Sprintf("probe interval %v; %d ACL rules as reconcilable state; 1/4 retired mid-partition", cfg.ProbeInterval, cfg.Rules),
			"detect = first missed probe → eviction, bound = interval × misses; wall adds the wait for the next probe tick",
			"flap keeps the flow table populated (stale epochs flushed); crash restarts with an empty table under traffic",
		},
	}
	for _, mb := range cfg.MissBudgets {
		for _, bo := range cfg.Backoffs {
			pt, err := e9Point(cfg.ProbeInterval, mb, bo, cfg.Rules)
			if err != nil {
				return nil, nil, fmt.Errorf("E9 misses=%d backoff=%v: %w", mb, bo, err)
			}
			res.Points = append(res.Points, pt)
			tbl.AddRow(
				fmt.Sprintf("%d", pt.MissBudget),
				fmt.Sprintf("%.0fms", pt.BackoffMS),
				fmt.Sprintf("%.1fms (%.0fms)", pt.DetectMS, pt.DetectBoundMS),
				fmt.Sprintf("%.1fms", pt.DetectWallMS),
				fmt.Sprintf("%.1fms", pt.ReconnectMS),
				fmt.Sprintf("%.1fms", pt.FlapConvergeMS),
				fmt.Sprintf("%.1fms", pt.CrashConvergeMS),
				fmt.Sprintf("%d", pt.StaleFlushed),
				fmt.Sprintf("%v", pt.Converged),
			)
		}
	}
	return tbl, res, nil
}
