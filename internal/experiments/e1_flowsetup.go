package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/cbench"
	"repro/internal/controller"
	"repro/internal/zof"
)

// E1Config parameterizes the flow-setup experiment.
type E1Config struct {
	SwitchCounts []int         // e.g. 1,4,16,64
	Window       int           // outstanding packet-ins per switch
	Duration     time.Duration // per configuration
}

// E1FlowSetup measures controller flow-setup capacity cbench-style: N
// emulated switches flood packet-ins at a controller running the L2
// learning app; we record response throughput and latency quantiles.
// Shape: throughput grows with switches until the single dispatch loop
// saturates; p95 latency stays well under 10ms (the Maple yardstick).
// The controller is pinned to one dispatch worker so the measurement
// keeps its documented serialized-dispatcher shape; E8 is the scaling
// experiment that sweeps the sharded dispatcher against this baseline.
func E1FlowSetup(cfg E1Config) (*Table, error) {
	if len(cfg.SwitchCounts) == 0 {
		cfg.SwitchCounts = []int{1, 4, 16, 64}
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	t := &Table{
		ID:     "E1",
		Title:  "reactive flow setup (cbench-style), learning app",
		Header: []string{"switches", "window", "responses/s", "p50", "p95", "p99"},
		Notes: []string{
			fmt.Sprintf("window=%d outstanding packet-ins per switch, %v per point",
				cfg.Window, cfg.Duration),
			"expected shape: throughput pins at the serialized dispatcher; latency grows ~linearly with switches past saturation (queueing), sub-ms at low fan-in",
			"dispatch pinned to 1 worker (serial baseline); see E8 for sharded scaling",
		},
	}
	for _, n := range cfg.SwitchCounts {
		ctl, err := controller.New(controller.Config{EventQueue: 1 << 16, DispatchWorkers: 1})
		if err != nil {
			return nil, err
		}
		ctl.Use(apps.NewLearningSwitch())
		res, err := cbench.Run(cbench.Config{
			Addr:     ctl.Addr(),
			Switches: n,
			Window:   cfg.Window,
			Duration: cfg.Duration,
		})
		ctl.Close()
		if err != nil {
			return nil, fmt.Errorf("E1 with %d switches: %w", n, err)
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", cfg.Window),
			f0(res.PerSecond()),
			res.Latency.Quantile(0.50).String(),
			res.Latency.Quantile(0.95).String(),
			res.Latency.Quantile(0.99).String(),
		)
	}
	return t, nil
}

// E1aProactiveVsReactive is the ablation: the same load answered by a
// null app that installs a single proactive wildcard rule (so every
// packet-in is answered with a drop flow-mod without any learning
// state), isolating the framework's dispatch cost from app logic.
func E1aProactiveVsReactive(duration time.Duration) (*Table, error) {
	if duration <= 0 {
		duration = 2 * time.Second
	}
	t := &Table{
		ID:     "E1a",
		Title:  "app-logic cost: learning app vs null responder",
		Header: []string{"app", "responses/s", "p95"},
	}
	for _, mode := range []string{"learning", "null"} {
		ctl, err := controller.New(controller.Config{EventQueue: 1 << 16, DispatchWorkers: 1})
		if err != nil {
			return nil, err
		}
		if mode == "learning" {
			ctl.Use(apps.NewLearningSwitch())
		} else {
			ctl.Use(nullResponder{})
		}
		res, err := cbench.Run(cbench.Config{
			Addr: ctl.Addr(), Switches: 16, Window: 8, Duration: duration,
		})
		ctl.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(mode, f0(res.PerSecond()), res.Latency.Quantile(0.95).String())
	}
	return t, nil
}

// nullResponder answers every packet-in with a minimal drop flow-mod
// referencing the buffered packet — zero app logic beyond the reply.
type nullResponder struct{}

func (nullResponder) Name() string { return "null" }

func (nullResponder) PacketIn(c *controller.Controller, ev controller.PacketInEvent) bool {
	sc, ok := c.Switch(ev.DPID)
	if !ok {
		return true
	}
	_ = sc.InstallFlow(&zof.FlowMod{
		Command:  zof.FlowAdd,
		Match:    zof.MatchAll(),
		Priority: 1,
		BufferID: ev.Msg.BufferID,
	})
	return true
}
