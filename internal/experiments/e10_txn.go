package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controller"
	"repro/internal/dataplane"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/zof"
)

// E10Config parameterizes the transactional-programming experiment.
type E10Config struct {
	Switches      int           // transaction participants (default 4)
	Txns          int           // committed transactions for the latency distribution (default 150)
	OpsPerSwitch  int           // FlowAdds per switch per transaction (default 4)
	PreRules      int           // pre-transaction intended rules per switch (default 8)
	AuditInterval time.Duration // anti-entropy period (default 50ms)
}

// E10Result is the machine-readable output (BENCH_e10.json).
type E10Result struct {
	Switches        int     `json:"switches"`
	TxnsCommitted   uint64  `json:"txns_committed"`
	OpsPerSwitch    int     `json:"ops_per_switch"`
	AuditIntervalMS float64 `json:"audit_interval_ms"`

	// Commit latency of successful multi-switch transactions
	// (stage → barrier fence on every participant).
	CommitP50MS  float64 `json:"commit_p50_ms"`
	CommitP95MS  float64 `json:"commit_p95_ms"`
	CommitMeanMS float64 `json:"commit_mean_ms"`

	// An injected per-op rejection (proxy writes a table-full Error for
	// one FlowMod) must abort the transaction, roll every participant
	// back, and leave all flow tables byte-identical to before.
	RejectAborted      bool `json:"reject_aborted"`
	RejectRolledBack   bool `json:"reject_rolled_back"`
	RejectTablesIntact bool `json:"reject_tables_intact"`

	// A participant crashing mid-commit (connection severed on the
	// first transactional op, datapath restarted empty) must abort the
	// transaction with survivors rolled back; the crashed switch
	// converges back to pre-transaction intent via reconnect plus
	// anti-entropy repair.
	CrashAborted         bool    `json:"crash_aborted"`
	CrashSurvivorsIntact bool    `json:"crash_survivors_intact"`
	CrashConverged       bool    `json:"crash_converged"`
	CrashConvergeMS      float64 `json:"crash_converge_ms"`

	// Injected drift (one intended rule deleted behind the controller's
	// back, one alien rule added) must be repaired by the auditor; the
	// convergence budget is two audit intervals.
	DriftRepaired       bool    `json:"drift_repaired"`
	DriftRepairMS       float64 `json:"drift_repair_ms"`
	DriftAuditIntervals float64 `json:"drift_audit_intervals"`

	// With no drift, the auditor must stay quiet.
	QuiescentRepairs uint64 `json:"quiescent_repairs"`
	Audits           uint64 `json:"audits"`
}

// e10Match builds the unique match for rule index i.
func e10Match(i int) zof.Match {
	m := zof.MatchAll()
	m.Wildcards &^= zof.WEthDst
	m.EthDst = packet.MACFromUint64(0x0E1000000000 | uint64(i))
	return m
}

const e10Priority = 500

// Cookie markers (low 48 bits; the session epoch occupies the top 16)
// let the proxy's fault policy target exactly the transactional op it
// should reject or crash on, leaving audits and reinstalls untouched.
const (
	e10RejectCookie = 0xE10BAD
	e10CrashCookie  = 0xE10DEAD
)

// e10Switch builds a two-port datapath.
func e10Switch(dpid uint64) *dataplane.Switch {
	sw := dataplane.NewSwitch(dataplane.Config{DPID: dpid})
	sw.AddPort(1, "in", 1000)
	sw.AddPort(2, "out", 1000).SetTx(func([]byte) {})
	return sw
}

// e10Canon renders a switch's flow table in canonical (sorted,
// counter-free) form, so two captures compare byte-identical exactly
// when the rules — matches, priorities, cookies, timeouts, actions —
// are identical.
func e10Canon(sc *controller.SwitchConn) (string, error) {
	rep, err := sc.Stats(&zof.StatsRequest{
		Kind: zof.StatsFlow, TableID: 0xff, Match: zof.MatchAll(),
	}, 2*time.Second)
	if err != nil {
		return "", err
	}
	lines := make([]string, 0, len(rep.Flows))
	for _, f := range rep.Flows {
		lines = append(lines, fmt.Sprintf("t%d p%d %v c%#x it%d ht%d %v",
			f.TableID, f.Priority, f.Match, f.Cookie, f.IdleTimeout, f.HardTimeout, f.Actions))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), nil
}

// e10CanonAll captures every connected switch's canonical table.
func e10CanonAll(ctl *controller.Controller) (map[uint64]string, error) {
	out := make(map[uint64]string)
	for _, sc := range ctl.Switches() {
		s, err := e10Canon(sc)
		if err != nil {
			return nil, fmt.Errorf("stats from %#x: %w", sc.DPID(), err)
		}
		out[sc.DPID()] = s
	}
	return out, nil
}

// e10WaitTable polls until dpid's canonical table equals want,
// returning the elapsed time and whether it converged.
func e10WaitTable(ctl *controller.Controller, dpid uint64, want string, deadline time.Duration) (time.Duration, bool) {
	start := time.Now()
	end := start.Add(deadline)
	for time.Now().Before(end) {
		if sc, ok := ctl.Switch(dpid); ok {
			if got, err := e10Canon(sc); err == nil && got == want {
				return time.Since(start), true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return time.Since(start), false
}

// E10Transactions measures the transactional flow-programming stack:
// multi-switch commit latency, rollback correctness under an injected
// rejection and under a mid-commit participant crash, and the
// anti-entropy auditor's drift-repair convergence (DESIGN.md "State
// ownership and the reconciliation contract").
func E10Transactions(cfg E10Config) (*Table, *E10Result, error) {
	if cfg.Switches <= 0 {
		cfg.Switches = 4
	}
	if cfg.Txns <= 0 {
		cfg.Txns = 150
	}
	if cfg.OpsPerSwitch <= 0 {
		cfg.OpsPerSwitch = 4
	}
	if cfg.PreRules <= 0 {
		cfg.PreRules = 8
	}
	if cfg.AuditInterval <= 0 {
		cfg.AuditInterval = 50 * time.Millisecond
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	res := &E10Result{
		Switches:        cfg.Switches,
		OpsPerSwitch:    cfg.OpsPerSwitch,
		AuditIntervalMS: ms(cfg.AuditInterval),
	}

	ctl, err := controller.New(controller.Config{
		AuditInterval: cfg.AuditInterval,
		TxnTimeout:    2 * time.Second,
	})
	if err != nil {
		return nil, nil, err
	}
	defer ctl.Close()

	// Switch 1 (the fault victim) attaches through a relay that can
	// reject or sever individual ops; the rest attach directly.
	proxy, err := netem.NewControlProxy(ctl.Addr())
	if err != nil {
		return nil, nil, err
	}
	defer proxy.Close()
	const victim = uint64(1)
	sess := dataplane.StartSession(e10Switch(victim), dataplane.SessionConfig{
		Addr:       proxy.Addr(),
		MinBackoff: 10 * time.Millisecond,
		Seed:       1,
	})
	defer func() { sess.Close() }()
	for i := 2; i <= cfg.Switches; i++ {
		dp, err := dataplane.Connect(e10Switch(uint64(i)), ctl.Addr(), 2*time.Second)
		if err != nil {
			return nil, nil, err
		}
		defer dp.Close()
	}
	if err := ctl.WaitForSwitches(cfg.Switches, 5*time.Second); err != nil {
		return nil, nil, err
	}

	// Pre-transaction intended state: PreRules rules per switch,
	// installed through one committed transaction.
	pre := ctl.NewTxn()
	for _, sc := range ctl.Switches() {
		for r := 0; r < cfg.PreRules; r++ {
			pre.Flow(sc.DPID(), &zof.FlowMod{
				Command:  zof.FlowAdd,
				Match:    e10Match(r),
				Priority: e10Priority,
				Cookie:   uint64(0xE10000 + r),
				BufferID: zof.NoBuffer,
				Actions:  []zof.Action{zof.Output(2)},
			})
		}
	}
	if err := pre.Commit(); err != nil {
		return nil, nil, fmt.Errorf("pre-rule install: %w", err)
	}

	// Phase A — commit latency. Each transaction rewrites the same
	// OpsPerSwitch rules on every switch under a fresh cookie (FlowAdd
	// replaces in place, so the tables do not grow).
	for t := 0; t < cfg.Txns; t++ {
		txn := ctl.NewTxn()
		for _, sc := range ctl.Switches() {
			for j := 0; j < cfg.OpsPerSwitch; j++ {
				txn.Flow(sc.DPID(), &zof.FlowMod{
					Command:  zof.FlowAdd,
					Match:    e10Match(1000 + j),
					Priority: e10Priority,
					Cookie:   uint64(0xE11000 + t),
					BufferID: zof.NoBuffer,
					Actions:  []zof.Action{zof.Output(2)},
				})
			}
		}
		if err := txn.Commit(); err != nil {
			return nil, nil, fmt.Errorf("latency txn %d: %w", t, err)
		}
	}
	lat := ctl.Metrics().Histogram("controller.txn.latency")
	commits, _ := ctl.Metrics().Value("controller.txn.commits")
	res.TxnsCommitted = uint64(commits)
	res.CommitP50MS = ms(lat.Quantile(0.50))
	res.CommitP95MS = ms(lat.Quantile(0.95))
	res.CommitMeanMS = ms(lat.Mean())

	// Phase B — injected rejection. The relay answers one marked
	// FlowMod with a table-full Error; the commit must abort, roll every
	// participant back, and leave all tables byte-identical.
	before, err := e10CanonAll(ctl)
	if err != nil {
		return nil, nil, err
	}
	var rejected atomic.Bool
	proxy.SetFlowModPolicy(func(fm *zof.FlowMod) (netem.FlowModDecision, uint16) {
		if fm.Command == zof.FlowAdd && fm.Cookie&(1<<48-1) == e10RejectCookie &&
			rejected.CompareAndSwap(false, true) {
			return netem.FlowModReject, zof.ErrCodeTableFull
		}
		return netem.FlowModPass, 0
	})
	rtxn := ctl.NewTxn()
	for _, sc := range ctl.Switches() {
		rtxn.Flow(sc.DPID(), &zof.FlowMod{
			Command:  zof.FlowAdd,
			Match:    e10Match(2000 + int(sc.DPID())),
			Priority: e10Priority,
			Cookie:   e10RejectCookie,
			BufferID: zof.NoBuffer,
			Actions:  []zof.Action{zof.Output(2)},
		})
	}
	rerr := rtxn.Commit()
	proxy.SetFlowModPolicy(nil)
	var terr *controller.TxnError
	if errors.As(rerr, &terr) {
		res.RejectAborted = len(terr.Rejections) > 0
		res.RejectRolledBack = terr.RolledBack
	}
	after, err := e10CanonAll(ctl)
	if err != nil {
		return nil, nil, err
	}
	res.RejectTablesIntact = canonEqual(before, after)

	// Phase C — mid-commit crash. The relay severs the victim's session
	// on the first marked op; the victim's datapath restarts empty. The
	// commit must abort with survivors rolled back; the victim's
	// pre-transaction intent survives in the store and is restored by
	// reconnect plus anti-entropy repair.
	crashed := make(chan struct{})
	var crashOnce sync.Once
	proxy.SetFlowModPolicy(func(fm *zof.FlowMod) (netem.FlowModDecision, uint16) {
		if fm.Command == zof.FlowAdd && fm.Cookie&(1<<48-1) == e10CrashCookie {
			crashOnce.Do(func() { close(crashed) })
			return netem.FlowModDrop, 0
		}
		return netem.FlowModPass, 0
	})
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		<-crashed
		sess.Close() // mid-commit death: TCP severed, datapath abandoned
	}()
	ctxn := ctl.NewTxn()
	for _, sc := range ctl.Switches() {
		ctxn.Flow(sc.DPID(), &zof.FlowMod{
			Command:  zof.FlowAdd,
			Match:    e10Match(3000 + int(sc.DPID())),
			Priority: e10Priority,
			Cookie:   e10CrashCookie,
			BufferID: zof.NoBuffer,
			Actions:  []zof.Action{zof.Output(2)},
		})
	}
	cerr := ctxn.Commit()
	res.CrashAborted = cerr != nil && errors.As(cerr, &terr)
	<-killed
	proxy.SetFlowModPolicy(nil)
	survivors, err := func() (map[uint64]string, error) {
		out := make(map[uint64]string)
		for _, sc := range ctl.Switches() {
			if sc.DPID() == victim {
				continue
			}
			s, err := e10Canon(sc)
			if err != nil {
				return nil, err
			}
			out[sc.DPID()] = s
		}
		return out, nil
	}()
	if err != nil {
		return nil, nil, err
	}
	res.CrashSurvivorsIntact = true
	for dpid, s := range survivors {
		if s != before[dpid] {
			res.CrashSurvivorsIntact = false
		}
	}
	// Restart the victim empty and measure convergence back to the
	// pre-transaction table, byte for byte (the auditor re-adds the
	// recorded rules verbatim, cookies included).
	vsw := e10Switch(victim)
	sess = dataplane.StartSession(vsw, dataplane.SessionConfig{
		Addr:       proxy.Addr(),
		MinBackoff: 10 * time.Millisecond,
		Seed:       2,
	})
	conv, ok := e10WaitTable(ctl, victim, before[victim], 10*time.Second)
	res.CrashConvergeMS = ms(conv)
	res.CrashConverged = ok
	if !ok {
		return nil, nil, fmt.Errorf("crashed switch did not converge to pre-transaction state")
	}

	// Phase D — drift repair. Mutate the victim's table behind the
	// controller's back: delete one intended rule, add one alien rule.
	// The auditor must converge the table back within (a budget of) two
	// audit intervals.
	vsc, ok := ctl.Switch(victim)
	if !ok {
		return nil, nil, fmt.Errorf("victim not connected after restart")
	}
	discard := func(zof.Message, uint32) {}
	vsw.Process(&zof.FlowMod{
		Command:  zof.FlowDeleteStrict,
		Match:    e10Match(0),
		Priority: e10Priority,
		BufferID: zof.NoBuffer,
	}, 0x7001, discard)
	vsw.Process(&zof.FlowMod{
		Command:  zof.FlowAdd,
		Match:    e10Match(5000),
		Priority: e10Priority,
		Cookie:   0xA11E4,
		BufferID: zof.NoBuffer,
	}, 0x7002, discard)
	if got, err := e10Canon(vsc); err != nil || got == before[victim] {
		return nil, nil, fmt.Errorf("drift injection not visible (err=%v)", err)
	}
	rep, ok := e10WaitTable(ctl, victim, before[victim], 10*time.Second)
	res.DriftRepairMS = ms(rep)
	res.DriftRepaired = ok
	res.DriftAuditIntervals = float64(rep) / float64(cfg.AuditInterval)
	if !ok {
		return nil, nil, fmt.Errorf("injected drift was not repaired")
	}

	// Phase E — quiescence: with tables converged, further audit passes
	// must repair nothing.
	mv := func(name string) uint64 {
		v, _ := ctl.Metrics().Value(name)
		return uint64(v)
	}
	repairs := func() uint64 {
		return mv("controller.audit.missing") + mv("controller.audit.mismatched") + mv("controller.audit.alien")
	}
	base := repairs()
	time.Sleep(4 * cfg.AuditInterval)
	res.QuiescentRepairs = repairs() - base
	res.Audits = mv("controller.audit.audits")

	tbl := &Table{
		ID:     "E10",
		Title:  "transactional flow programming: commit, rollback, anti-entropy",
		Header: []string{"metric", "value"},
		Notes: []string{
			fmt.Sprintf("%d switches (1 behind a fault relay), %d ops/switch per txn, %d pre-rules, audit every %v",
				cfg.Switches, cfg.OpsPerSwitch, cfg.PreRules, cfg.AuditInterval),
			"rollback intact = flow tables byte-identical (canonical FlowStats) to pre-transaction state",
			"crash converge = mid-commit session death + empty restart → intent restored by reconnect + auditor",
		},
	}
	tbl.AddRow("commit p50 / p95 / mean", fmt.Sprintf("%.2f / %.2f / %.2f ms", res.CommitP50MS, res.CommitP95MS, res.CommitMeanMS))
	tbl.AddRow("commits", fmt.Sprintf("%d (%d switches x %d ops)", res.TxnsCommitted, cfg.Switches, cfg.OpsPerSwitch))
	tbl.AddRow("reject: aborted/rolled-back/intact", fmt.Sprintf("%v / %v / %v", res.RejectAborted, res.RejectRolledBack, res.RejectTablesIntact))
	tbl.AddRow("crash: aborted/survivors intact", fmt.Sprintf("%v / %v", res.CrashAborted, res.CrashSurvivorsIntact))
	tbl.AddRow("crash converge", fmt.Sprintf("%.1f ms", res.CrashConvergeMS))
	tbl.AddRow("drift repair", fmt.Sprintf("%.1f ms (%.2f audit intervals)", res.DriftRepairMS, res.DriftAuditIntervals))
	tbl.AddRow("quiescent repairs", fmt.Sprintf("%d (over %d audits)", res.QuiescentRepairs, res.Audits))
	return tbl, res, nil
}

// canonEqual compares two canonical table captures.
func canonEqual(a, b map[uint64]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
