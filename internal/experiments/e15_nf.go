package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/netem"
	"repro/internal/nf"
	"repro/internal/packet"
	"repro/internal/topo"
	"repro/internal/workload"
	"repro/internal/zof"
)

// E15Config parameterizes the stateful-NF experiment.
type E15Config struct {
	// Part 1 — per-frame NF cost under zipf churn on a bare switch.
	Flows     int           // zipf flow population (default 3000)
	Skew      float64       // zipf exponent (default 1.2)
	Seed      int64         // workload seed (default 1)
	Measure   time.Duration // wall time per variant (default 400ms)
	Idle      time.Duration // conntrack idle horizon (default 40ms)
	TickEvery time.Duration // sweep period while measuring (default 5ms)
	Burst     int           // vector size for the burst point (default 64)

	// Part 2 — NAT + tunnel overlay end to end, audited.
	OverlayFlows  int           // distinct overlay connections per round (default 24)
	OverlayRounds int           // rounds of fresh connections (default 3)
	OverlayIdle   time.Duration // conntrack idle on the overlay edge (default 150ms)
	AuditInterval time.Duration // anti-entropy period (default 25ms)
}

func (cfg *E15Config) fill() {
	if cfg.Flows <= 0 {
		cfg.Flows = 3000
	}
	if cfg.Skew <= 1 {
		cfg.Skew = 1.2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Measure <= 0 {
		cfg.Measure = 400 * time.Millisecond
	}
	if cfg.Idle <= 0 {
		cfg.Idle = 40 * time.Millisecond
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 5 * time.Millisecond
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 64
	}
	if cfg.OverlayFlows <= 0 {
		cfg.OverlayFlows = 24
	}
	if cfg.OverlayRounds <= 0 {
		cfg.OverlayRounds = 3
	}
	if cfg.OverlayIdle <= 0 {
		cfg.OverlayIdle = 150 * time.Millisecond
	}
	if cfg.AuditInterval <= 0 {
		cfg.AuditInterval = 25 * time.Millisecond
	}
}

// E15Variant is one measured rule shape.
type E15Variant struct {
	Name         string  `json:"name"`
	FramesPerSec float64 `json:"frames_per_sec"`
	OverheadPct  float64 `json:"overhead_pct"` // vs the plain variant
}

// E15Result is the machine-readable output (BENCH_e15.json).
type E15Result struct {
	Flows     int     `json:"flows"`
	Skew      float64 `json:"skew"`
	IdleMS    float64 `json:"idle_ms"`
	MeasureMS int64   `json:"measure_ms"`

	Variants []E15Variant `json:"variants"`

	// Churn accounting from the full-chain scalar run.
	Occupancy      int     `json:"conntrack_occupancy"`
	Created        uint64  `json:"conns_created"`
	Expired        uint64  `json:"conns_expired"`
	ExpiryLagMaxMS float64 `json:"expiry_lag_max_ms"`
	ExpiryLagAvgMS float64 `json:"expiry_lag_avg_ms"`
	NATAllocated   uint64  `json:"nat_allocated"`
	NATReleased    uint64  `json:"nat_released"`
	NATExhausted   uint64  `json:"nat_exhausted"`

	// Overlay (part 2).
	OverlaySent       uint64  `json:"overlay_sent"`
	OverlayEchoed     uint64  `json:"overlay_echoed"`  // datagrams that crossed NAT+tunnel to the far host
	OverlayReplies    uint64  `json:"overlay_replies"` // echoes that made it back through un-NAT
	AuditsRun         uint64  `json:"audits_run"`      // audit passes during the churn window
	AuditFalseRepairs uint64  `json:"audit_false_repairs"`
	DrainMS           float64 `json:"drain_ms"` // -1: state never drained
}

// e15Pub is the NAT public address; outside the 10.0.0.0/8 workload
// range so every generated flow takes the outbound path.
var e15Pub = packet.IPv4Addr{192, 0, 2, 1}

// e15Switch builds a one-in-one-out switch whose single rule walks the
// given stages before forwarding; a nil register hook means plain.
func e15Switch(stages map[uint32]nf.Stage, ids []uint32) (*dataplane.Switch, error) {
	sw := dataplane.NewSwitch(dataplane.Config{DPID: 1, DropOnMiss: true})
	sw.AddPort(1, "in", 1000)
	sw.AddPort(2, "out", 1000).SetTx(func([]byte) {})
	for id, st := range stages {
		if err := sw.RegisterStage(id, st); err != nil {
			return nil, err
		}
	}
	acts := make([]zof.Action, 0, len(ids)+1)
	for _, id := range ids {
		acts = append(acts, zof.NF(id))
	}
	acts = append(acts, zof.Output(2))
	var repErr error
	sw.Process(&zof.FlowMod{Command: zof.FlowAdd, Match: zof.MatchAll(), Priority: 10,
		BufferID: zof.NoBuffer, Actions: acts}, 1,
		func(rep zof.Message, _ uint32) {
			if e, ok := rep.(*zof.Error); ok {
				repErr = fmt.Errorf("flow add: %s", e.Detail)
			}
		})
	if repErr != nil {
		return nil, repErr
	}
	return sw, nil
}

// e15Frames draws the zipf-churned frame stream: a population of Flows
// five-tuples, then an access order where popular flows recur fast
// enough to stay resident and the tail idles out between visits.
func e15Frames(cfg E15Config) (frames [][]byte, order []int) {
	fg := workload.NewFlowGen(cfg.Flows, cfg.Skew, cfg.Seed)
	buf := packet.NewBuffer(64)
	frames = make([][]byte, cfg.Flows)
	for i := range frames {
		frames[i] = append([]byte(nil), fg.Next().Frame(buf, 64)...)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 15))
	zipf := rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Flows-1))
	order = make([]int, 1<<16)
	for i := range order {
		order[i] = int(zipf.Uint64())
	}
	return frames, order
}

// e15Measure pumps the stream through sw for d while ticking sweeps,
// and reports frames/s. burst > 1 uses the vectorized ingress path.
func e15Measure(sw *dataplane.Switch, frames [][]byte, order []int, d, tickEvery time.Duration, burst int) float64 {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(tickEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				sw.Tick(now)
			}
		}
	}()
	var n uint64
	start := time.Now()
	deadline := start.Add(d)
	if burst <= 1 {
		for i := 0; ; i++ {
			sw.HandleFrame(1, frames[order[i&(len(order)-1)]])
			n++
			if n&0x3ff == 0 && time.Now().After(deadline) {
				break
			}
		}
	} else {
		vec := make([][]byte, burst)
		for i := 0; ; {
			for j := 0; j < burst; j++ {
				vec[j] = frames[order[i&(len(order)-1)]]
				i++
			}
			sw.HandleBurst(1, vec)
			n += uint64(burst)
			if time.Now().After(deadline) {
				break
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	close(done)
	return float64(n) / elapsed
}

// E15StatefulNF measures the cost and state behavior of the composable
// NF stage layer: part 1 runs zipf-churned traffic through successively
// longer stage chains on one switch; part 2 stands up a NAT'd VXLAN
// overlay across a 3-switch fabric and verifies the intended-state
// auditor never "repairs" steering rules while conntrack state churns
// underneath them.
func E15StatefulNF(cfg E15Config) (*Table, *E15Result, error) {
	cfg.fill()
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	res := &E15Result{
		Flows:     cfg.Flows,
		Skew:      cfg.Skew,
		IdleMS:    ms(cfg.Idle),
		MeasureMS: cfg.Measure.Milliseconds(),
	}
	frames, order := e15Frames(cfg)

	tun := nf.TunnelConfig{
		VNI:       42,
		LocalIP:   packet.IPv4Addr{10, 200, 0, 1},
		RemoteIP:  packet.IPv4Addr{10, 200, 0, 2},
		LocalMAC:  packet.MACFromUint64(0x02e1500000a1),
		RemoteMAC: packet.MACFromUint64(0x02e1500000b1),
	}
	type variant struct {
		name  string
		build func() (map[uint32]nf.Stage, []uint32, *nf.Conntrack, *nf.NAT)
		burst int
	}
	ctNat := func() (map[uint32]nf.Stage, []uint32, *nf.Conntrack, *nf.NAT) {
		ct := nf.NewConntrack(nf.ConntrackConfig{Idle: cfg.Idle})
		nat := nf.NewNAT(nf.NATConfig{CT: ct, PublicIP: e15Pub})
		return map[uint32]nf.Stage{1: ct, 2: nat, 3: nf.NewTunnelEncap(tun)},
			[]uint32{1, 2, 3}, ct, nat
	}
	variants := []variant{
		{name: "plain", build: func() (map[uint32]nf.Stage, []uint32, *nf.Conntrack, *nf.NAT) {
			return nil, nil, nil, nil
		}},
		{name: "conntrack", build: func() (map[uint32]nf.Stage, []uint32, *nf.Conntrack, *nf.NAT) {
			ct := nf.NewConntrack(nf.ConntrackConfig{Idle: cfg.Idle})
			return map[uint32]nf.Stage{1: ct}, []uint32{1}, ct, nil
		}},
		{name: "ct+nat+encap", build: ctNat},
		{name: fmt.Sprintf("ct+nat+encap burst%d", cfg.Burst), build: ctNat, burst: cfg.Burst},
	}

	var base float64
	for _, v := range variants {
		stages, ids, ct, nat := v.build()
		sw, err := e15Switch(stages, ids)
		if err != nil {
			return nil, nil, err
		}
		fps := e15Measure(sw, frames, order, cfg.Measure, cfg.TickEvery, v.burst)
		ev := E15Variant{Name: v.name, FramesPerSec: fps}
		if base == 0 {
			base = fps
		} else {
			ev.OverheadPct = (base - fps) / base * 100
		}
		res.Variants = append(res.Variants, ev)
		// Churn accounting comes from the scalar full-chain run.
		if ct != nil && nat != nil && v.burst == 0 {
			s := ct.StateSummary()
			res.Occupancy = s.Entries
			res.Created = s.Counters["created"]
			res.Expired = s.Counters["expired"]
			lagMax, lagAvg := ct.ExpiryLag()
			res.ExpiryLagMaxMS = ms(lagMax)
			res.ExpiryLagAvgMS = ms(lagAvg)
			ns := nat.StateSummary()
			res.NATAllocated = ns.Counters["allocated"]
			res.NATReleased = ns.Counters["released"]
			res.NATExhausted = ns.Counters["exhausted"]
		}
	}

	if err := e15Overlay(cfg, res); err != nil {
		return nil, nil, err
	}

	tbl := &Table{
		ID:     "E15",
		Title:  "stateful NF stages: per-frame cost and audited overlay",
		Header: []string{"variant", "frames/s", "overhead"},
		Notes: []string{
			fmt.Sprintf("%d zipf(%.1f) flows, conntrack idle %v; occupancy %d, created %d, expired %d",
				cfg.Flows, cfg.Skew, cfg.Idle, res.Occupancy, res.Created, res.Expired),
			fmt.Sprintf("expiry lag max %.2fms avg %.2fms; nat allocated %d released %d exhausted %d",
				res.ExpiryLagMaxMS, res.ExpiryLagAvgMS, res.NATAllocated, res.NATReleased, res.NATExhausted),
			fmt.Sprintf("overlay: %d sent, %d echoed, %d replies; %d audits, %d false repairs; drained in %.0fms",
				res.OverlaySent, res.OverlayEchoed, res.OverlayReplies,
				res.AuditsRun, res.AuditFalseRepairs, res.DrainMS),
		},
	}
	for _, v := range res.Variants {
		over := "-"
		if v.OverheadPct != 0 {
			over = fmt.Sprintf("%.1f%%", v.OverheadPct)
		}
		tbl.AddRow(v.Name, f0(v.FramesPerSec), over)
	}
	return tbl, res, nil
}

// e15Overlay runs part 2: hostA -(SNAT, VXLAN)-> core -> hostB and
// back, with the auditor watching the steering rules the whole time.
func e15Overlay(cfg E15Config, res *E15Result) error {
	nfp := apps.NewNFPolicy()
	n, err := core.Start(core.Options{
		Graph:      topo.Linear(3, 1000),
		Apps:       []controller.App{nfp},
		Controller: controller.Config{AuditInterval: cfg.AuditInterval},
		Emu: netem.Config{
			SwitchCfg: dataplane.Config{DropOnMiss: true},
			TickEvery: cfg.TickEvery,
		},
	})
	if err != nil {
		return err
	}
	defer n.Stop()

	hostA, err := n.AddHost("hostA", 1, packet.IPv4Addr{10, 0, 0, 1})
	if err != nil {
		return err
	}
	hostB, err := n.AddHost("hostB", 3, packet.IPv4Addr{10, 0, 0, 2})
	if err != nil {
		return err
	}

	// Overlay NFs. edgeA (s1) owns conntrack+NAT and one tunnel end;
	// edgeB (s3) owns the other tunnel end. s2 is pure underlay.
	edgeA, edgeB := n.Emu.Switches[1], n.Emu.Switches[3]
	tepA, tepB := packet.IPv4Addr{10, 200, 0, 1}, packet.IPv4Addr{10, 200, 0, 2}
	macA, macB := packet.MACFromUint64(0x02e1500000a1), packet.MACFromUint64(0x02e1500000b1)
	tunA := nf.TunnelConfig{VNI: 7, LocalIP: tepA, RemoteIP: tepB, LocalMAC: macA, RemoteMAC: macB}
	tunB := nf.TunnelConfig{VNI: 7, LocalIP: tepB, RemoteIP: tepA, LocalMAC: macB, RemoteMAC: macA}
	ct := nf.NewConntrack(nf.ConntrackConfig{Idle: cfg.OverlayIdle})
	nat := nf.NewNAT(nf.NATConfig{CT: ct, PublicIP: e15Pub})
	for id, st := range map[uint32]nf.Stage{1: ct, 2: nat, 3: nf.NewTunnelEncap(tunA), 4: nf.NewTunnelDecap(tunA)} {
		if err := edgeA.RegisterStage(id, st); err != nil {
			return err
		}
	}
	for id, st := range map[uint32]nf.Stage{3: nf.NewTunnelEncap(tunB), 4: nf.NewTunnelDecap(tunB)} {
		if err := edgeB.RegisterStage(id, st); err != nil {
			return err
		}
	}

	// Steering intent, installed through the audited transaction path.
	// Ports: host uplinks are port 2 on their edge; the linear fabric
	// wires s1:1-s2:1 and s2:2-s3:1.
	udpFrom := func(port uint32) zof.Match {
		m := zof.MatchAll()
		m.Wildcards &^= zof.WInPort | zof.WEtherType | zof.WIPProto
		m.InPort, m.EtherType, m.IPProto = port, packet.EtherTypeIPv4, packet.ProtoUDP
		return m
	}
	vxlanFrom := func(port uint32) zof.Match {
		m := udpFrom(port)
		m.Wildcards &^= zof.WTPDst
		m.TPDst = nf.DefaultVXLANPort
		return m
	}
	toIP := func(ip packet.IPv4Addr) zof.Match {
		m := zof.MatchAll()
		m.Wildcards &^= zof.WEtherType
		m.EtherType = packet.EtherTypeIPv4
		m.IPDst, m.DstPrefix = ip, 32
		return m
	}
	err = nfp.Steer(n.Controller,
		// edgeA: host traffic is tracked, NAT'd, tunneled toward edgeB.
		apps.NFSteer{DPID: 1, Priority: 100, Match: udpFrom(2),
			StageIDs: []uint32{1, 2, 3}, Then: []zof.Action{zof.Output(1)}, Cookie: 0xE15001},
		// edgeA: tunnel arrivals are decapped and un-NAT'd to the host.
		apps.NFSteer{DPID: 1, Priority: 110, Match: vxlanFrom(1),
			StageIDs: []uint32{4, 2},
			Then:     []zof.Action{zof.SetEthDst(hostA.MAC), zof.Output(2)}, Cookie: 0xE15002},
		// edgeB mirrors the tunnel, without NAT.
		apps.NFSteer{DPID: 3, Priority: 110, Match: vxlanFrom(1),
			StageIDs: []uint32{4},
			Then:     []zof.Action{zof.SetEthDst(hostB.MAC), zof.Output(2)}, Cookie: 0xE15003},
		apps.NFSteer{DPID: 3, Priority: 100, Match: udpFrom(2),
			StageIDs: []uint32{3}, Then: []zof.Action{zof.Output(1)}, Cookie: 0xE15004},
		// s2 routes the underlay on outer addresses; same intent path,
		// no stages.
		apps.NFSteer{DPID: 2, Priority: 100, Match: toIP(tepB),
			Then: []zof.Action{zof.Output(2)}, Cookie: 0xE15005},
		apps.NFSteer{DPID: 2, Priority: 100, Match: toIP(tepA),
			Then: []zof.Action{zof.Output(1)}, Cookie: 0xE15006},
	)
	if err != nil {
		return fmt.Errorf("steering install: %w", err)
	}

	hostA.SeedARP(hostB.IP, hostB.MAC)
	hostB.SeedARP(e15Pub, packet.MACFromUint64(0x02e150000099)) // edgeA rewrites on the way in
	hostB.OnUDP = func(src packet.IPv4Addr, sp, dp uint16, payload []byte) {
		hostB.SendUDP(src, dp, sp, payload)
	}

	audit := func(name string) uint64 {
		v, _ := n.Controller.Metrics().Value("controller.audit." + name)
		return uint64(v)
	}
	falseRepairs := func() uint64 { return audit("missing") + audit("mismatched") + audit("alien") }
	// Let at least one audit pass see the freshly installed intent
	// before we baseline.
	time.Sleep(2 * cfg.AuditInterval)
	repairs0, audits0 := falseRepairs(), audit("audits")

	// Churn: rounds of fresh connections, spaced so audits interleave
	// with entry creation and expiry.
	var sent uint64
	for r := 0; r < cfg.OverlayRounds; r++ {
		for i := 0; i < cfg.OverlayFlows; i++ {
			hostA.SendUDP(hostB.IP, uint16(30000+r*1000+i), 7777, []byte("e15"))
			sent++
		}
		time.Sleep(2 * cfg.AuditInterval)
	}
	deadline := time.Now().Add(5 * time.Second)
	for hostA.RxUDP.Load() < sent && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	res.OverlaySent = sent
	res.OverlayEchoed = hostB.RxUDP.Load()
	res.OverlayReplies = hostA.RxUDP.Load()

	// Idle out: dynamic state must drain to zero on its own clock while
	// the steering rules stay untouched.
	start := time.Now()
	res.DrainMS = -1
	drainDeadline := start.Add(cfg.OverlayIdle + 2*time.Second)
	for time.Now().Before(drainDeadline) {
		if ct.Entries() == 0 && nat.Bindings() == 0 {
			res.DrainMS = float64(time.Since(start).Nanoseconds()) / 1e6
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(2 * cfg.AuditInterval)
	res.AuditFalseRepairs = falseRepairs() - repairs0
	res.AuditsRun = audit("audits") - audits0
	return nil
}
