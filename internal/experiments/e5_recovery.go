package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/intent"
	"repro/internal/topo"
	"repro/internal/zof"
)

// E5Config parameterizes the failure-recovery experiment.
type E5Config struct {
	Failures int
	Seed     int64
}

// nopInstaller measures pure control-plane recompile cost.
type nopInstaller struct{ ops int }

func (n *nopInstaller) Apply(ops []intent.RuleOp) error {
	n.ops += len(ops)
	return nil
}

// E5Recovery measures failure recovery across topologies: submit an
// all-pairs intent mesh, fail random links one at a time, record the
// intent framework's recompile latency, rule churn, and path stretch;
// compare against the L2 answer (recompute the spanning tree and flush
// every learned flow). Shape: intent recompiles complete in well under
// a millisecond per event with surgical rule churn and stretch near 1,
// while the spanning-tree baseline flushes the whole network.
func E5Recovery(cfg E5Config) (*Table, error) {
	if cfg.Failures <= 0 {
		cfg.Failures = 10
	}
	t := &Table{
		ID:    "E5",
		Title: "failure recovery: intent recompile vs spanning-tree flush",
		Header: []string{"topology", "intents", "failures", "reroute-p50", "reroute-p99",
			"rules-touched/fail", "mean-stretch", "lost", "stp-recompute", "stp-flush"},
		Notes: []string{
			"stp-flush counts flows invalidated by full L2 reconvergence (all of them)",
			"expected shape: sub-ms recompiles, stretch ~1, churn ≪ full flush",
		},
	}
	type topoCase struct {
		name  string
		graph *topo.Graph
		ends  []topo.NodeID
	}
	ft, edges, err := topo.FatTree(4, 1000)
	if err != nil {
		return nil, err
	}
	wan, sites := topo.WAN(1000)
	var siteIDs []topo.NodeID
	for _, s := range sites {
		siteIDs = append(siteIDs, s.ID)
	}
	for _, tc := range []topoCase{
		{"fat-tree-k4", ft, edges},
		{"wan-12", wan, siteIDs},
	} {
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		inst := &nopInstaller{}
		mgr := intent.NewManager(tc.graph, inst)
		id := intent.ID(0)
		for i := 0; i < len(tc.ends); i++ {
			for j := i + 1; j < len(tc.ends); j++ {
				id++
				m := zof.MatchAll()
				m.Wildcards &^= zof.WEthSrc | zof.WEthDst
				m.EthSrc[4], m.EthSrc[5] = byte(i), byte(j)
				m.EthDst[4], m.EthDst[5] = byte(j), byte(i)
				if err := mgr.Submit(intent.Intent{
					ID:    id,
					Src:   intent.Endpoint{Node: tc.ends[i], Port: 100},
					Dst:   intent.Endpoint{Node: tc.ends[j], Port: 100},
					Match: m, Priority: 10,
				}); err != nil {
					return nil, fmt.Errorf("%s intent %d: %w", tc.name, id, err)
				}
			}
		}
		installedOps := inst.ops
		inst.ops = 0

		links := tc.graph.Links()
		lost := 0
		for f := 0; f < cfg.Failures; f++ {
			k := links[rng.Intn(len(links))].Key()
			_, l, _ := mgr.OnLinkDown(k)
			lost += l
			mgr.OnLinkUp(k) // restore so failures stay independent
		}
		// Mean stretch over surviving intents (all restored now).
		var stretchSum float64
		var stretchN int
		for ii := intent.ID(1); ii <= id; ii++ {
			if s, ok := mgr.Stretch(ii); ok {
				stretchSum += s
				stretchN++
			}
		}
		meanStretch := 1.0
		if stretchN > 0 {
			meanStretch = stretchSum / float64(stretchN)
		}

		// Spanning-tree baseline: recompute the BFS tree (timed) and
		// flush everything a learning network would have installed —
		// approximate as the rules the intents occupy.
		stpStart := time.Now()
		for i := 0; i < 100; i++ {
			tc.graph.SpanningTree(tc.ends[0])
		}
		stpPer := time.Since(stpStart) / 100

		t.AddRow(tc.name,
			fmt.Sprintf("%d", int(id)),
			fmt.Sprintf("%d", cfg.Failures),
			mgr.Recompiles.Quantile(0.5).String(),
			mgr.Recompiles.Quantile(0.99).String(),
			fmt.Sprintf("%d", inst.ops/(2*cfg.Failures)), // ops per down+up pair
			f2(meanStretch),
			fmt.Sprintf("%d", lost),
			stpPer.String(),
			fmt.Sprintf("%d", installedOps), // full flush = everything reinstalled
		)
	}
	return t, nil
}
