package experiments

import (
	"fmt"

	"repro/internal/te"
	"repro/internal/update"
	"repro/internal/workload"

	"repro/internal/topo"
)

// E4Config parameterizes the congestion-free update experiment.
type E4Config struct {
	Scratches []float64 // headroom fractions to sweep
	Trials    int       // random transitions per scratch setting
	Demand    float64
	Seed      int64
}

// E4Update reproduces the SWAN/zUpdate safety table: random demand
// shifts on the WAN are applied (a) naively in one asynchronous shot
// and (b) via the interpolating planner. We count transitions with
// transient overload and the steps the planner needed. Shape: naive
// updates overload in most transitions once the network runs hot;
// the planner achieves zero overloads whenever scratch >= 10%, within
// the ceil(1/s)-1 step bound.
func E4Update(cfg E4Config) (*Table, error) {
	if len(cfg.Scratches) == 0 {
		cfg.Scratches = []float64{0.0, 0.05, 0.10, 0.20}
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 10
	}
	if cfg.Demand <= 0 {
		cfg.Demand = 9000
	}
	g, _ := topo.WAN(1000)
	caps := update.Capacities(g)

	t := &Table{
		ID:    "E4",
		Title: "congestion-free updates: naive vs planned transitions",
		Header: []string{"scratch", "trials", "naive-overloaded", "planner-failed",
			"max-steps", "avg-steps", "bound"},
		Notes: []string{
			fmt.Sprintf("WAN gravity transitions, demand %.0f, %d trials each", cfg.Demand, cfg.Trials),
			"expected shape: naive overloads most hot transitions; planner never does with s>=0.10",
		},
	}
	for _, s := range cfg.Scratches {
		naiveBad, planFail, maxSteps, sumSteps, planned := 0, 0, 0, 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + int64(trial)*31
			m1 := workload.Gravity(g, cfg.Demand, seed)
			m2 := workload.Perturb(m1, 0.8, seed+1000)
			old, err := te.Solve(g, m1, te.Config{KPaths: 4, Headroom: s})
			if err != nil {
				return nil, err
			}
			new_, err := te.Solve(g, m2, te.Config{KPaths: 4, Headroom: s})
			if err != nil {
				return nil, err
			}
			if len(update.StepViolations(old, new_, caps)) > 0 {
				naiveBad++
			}
			plan, err := (update.Planner{MaxIntermediates: 16}).Plan(old, new_, caps)
			if err != nil {
				planFail++
				continue
			}
			planned++
			steps := plan.Intermediates()
			sumSteps += steps
			if steps > maxSteps {
				maxSteps = steps
			}
		}
		bound := "-"
		if s > 0 {
			bound = fmt.Sprintf("%d", int(1/s+0.999999)-1)
		}
		avg := "-"
		if planned > 0 {
			avg = f2(float64(sumSteps) / float64(planned))
		}
		t.AddRow(f2(s), fmt.Sprintf("%d", cfg.Trials),
			fmt.Sprintf("%d", naiveBad), fmt.Sprintf("%d", planFail),
			fmt.Sprintf("%d", maxSteps), avg, bound)
	}
	return t, nil
}
