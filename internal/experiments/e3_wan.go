package experiments

import (
	"fmt"

	"repro/internal/te"
	"repro/internal/topo"
	"repro/internal/workload"
)

// E3Config parameterizes the WAN utilization experiment.
type E3Config struct {
	Scales []float64 // demand scale multipliers over the base matrix
	KPaths int
	Seed   int64
}

// E3Utilization reproduces the B4/SWAN headline figure: demand on the
// 12-site WAN is swept from light to oversubscribed; at each point we
// compare centralized TE (k-path max-min) against shortest-path
// routing. Shape: both deliver everything when idle; as load grows the
// baseline strands capacity on the geographically cheap routes while
// TE keeps delivering (~1.3x more at the knee) and drives mean
// utilization toward 100%.
func E3Utilization(cfg E3Config) (*Table, error) {
	if len(cfg.Scales) == 0 {
		cfg.Scales = []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0}
	}
	if cfg.KPaths <= 0 {
		cfg.KPaths = 4
	}
	g, _ := topo.WAN(1000)
	// Base matrix sized so scale 1.0 sits at the interesting knee.
	base := workload.Gravity(g, 10000, cfg.Seed+3)

	t := &Table{
		ID:    "E3",
		Title: "WAN delivered traffic and utilization: TE vs shortest path",
		Header: []string{"scale", "demand", "TE-deliv", "SP-deliv",
			"TE-frac", "SP-frac", "gain", "TE-meanU", "SP-meanU"},
		Notes: []string{
			fmt.Sprintf("12-site WAN, 1000 Mbps links, gravity demands, k=%d paths", cfg.KPaths),
			"expected shape: gain ~1 at low load, rising to ~1.3x past the knee; TE meanU -> ~0.9",
		},
	}
	for _, s := range cfg.Scales {
		m := base.Scale(s)
		alloc, err := te.Solve(g, m, te.Config{KPaths: cfg.KPaths})
		if err != nil {
			return nil, err
		}
		sp := te.SolveShortestPath(g, m, 0)
		gain := 1.0
		if sp.TotalAllocated() > 0 {
			gain = alloc.TotalAllocated() / sp.TotalAllocated()
		}
		t.AddRow(
			f2(s), f0(m.Total()),
			f0(alloc.TotalAllocated()), f0(sp.TotalAllocated()),
			f2(alloc.DeliveredFraction()), f2(sp.DeliveredFraction()),
			f2(gain), f2(alloc.MeanUtilization()), f2(sp.MeanUtilization()),
		)
	}
	return t, nil
}

// E3aPathDiversity is the ablation over k: what path diversity buys.
// Shape: the worst-off commodity's satisfaction (the max-min
// objective) improves monotonically with k and flattens by k=4, while
// TOTAL delivered traffic can dip slightly — alternate paths are
// longer, so fairness spends more link-resource per delivered Mbps.
// That fairness/efficiency tension is exactly why B4 splits per
// priority class rather than maximizing raw throughput.
func E3aPathDiversity(ks []int, seed int64) (*Table, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8}
	}
	g, _ := topo.WAN(1000)
	m := workload.Gravity(g, 12000, seed+3)
	sp := te.SolveShortestPath(g, m, 0)

	t := &Table{
		ID:     "E3a",
		Title:  "ablation: path diversity k (demand 12000)",
		Header: []string{"k", "delivered", "min-satisfaction", "gain-vs-SP", "meanU"},
		Notes: []string{
			"min-satisfaction = worst-off commodity's granted/demanded (the max-min objective)",
			"expected shape: min-satisfaction monotone in k, flattening by k=4; total may dip",
		},
	}
	for _, k := range ks {
		alloc, err := te.Solve(g, m, te.Config{KPaths: k})
		if err != nil {
			return nil, err
		}
		minSat := 1.0
		for _, c := range alloc.Commodities {
			if s := c.Satisfaction(); s < minSat {
				minSat = s
			}
		}
		t.AddRow(fmt.Sprintf("%d", k),
			f0(alloc.TotalAllocated()),
			f2(minSat),
			f2(alloc.TotalAllocated()/sp.TotalAllocated()),
			f2(alloc.MeanUtilization()))
	}
	return t, nil
}
