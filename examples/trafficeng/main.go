// Trafficeng demonstrates the centralized WAN traffic engineering
// service on the 12-site backbone: a gravity demand matrix is solved
// with k-path max-min TE and compared against shortest-path routing,
// then one commodity's engineered path splits are compiled to the
// quantized group weights a datapath select group would install.
package main

import (
	"fmt"
	"log"

	"repro/internal/te"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	graph, sites := topo.WAN(1000)
	name := map[topo.NodeID]string{}
	for _, s := range sites {
		name[s.ID] = s.Name
	}

	// The demand point matches experiment E3's knee (scale 1.5 of the
	// base matrix), where stranded shortest-path capacity is clearest.
	demands := workload.Gravity(graph, 10000, 4).Scale(1.5)
	fmt.Printf("WAN: %d sites, %d links; demand total %.0f Mbps\n\n",
		graph.NumNodes(), graph.NumLinks(), demands.Total())

	engineered, err := te.Solve(graph, demands, te.Config{KPaths: 4, Headroom: 0.1})
	if err != nil {
		log.Fatalf("trafficeng: %v", err)
	}
	baseline := te.SolveShortestPath(graph, demands, 0)

	fmt.Println("                     TE (k=4, max-min)   shortest-path")
	fmt.Printf("delivered Mbps       %-18.0f %.0f\n",
		engineered.TotalAllocated(), baseline.TotalAllocated())
	fmt.Printf("delivered fraction   %-18.2f %.2f\n",
		engineered.DeliveredFraction(), baseline.DeliveredFraction())
	fmt.Printf("mean link util       %-18.2f %.2f\n",
		engineered.MeanUtilization(), baseline.MeanUtilization())
	fmt.Printf("max link util        %-18.2f %.2f\n",
		engineered.MaxUtilization(), baseline.MaxUtilization())
	fmt.Printf("TE carries %.2fx the baseline's traffic\n\n",
		engineered.TotalAllocated()/baseline.TotalAllocated())

	// Show the biggest commodity's engineered splits.
	big := engineered.Commodities[0]
	for _, c := range engineered.Commodities {
		if c.Demand.Rate > big.Demand.Rate {
			big = c
		}
	}
	fmt.Printf("largest commodity: %s -> %s, demand %.0f, granted %.0f over %d paths\n",
		name[big.Demand.Src], name[big.Demand.Dst], big.Demand.Rate, big.Allocated, len(big.Paths))
	weights := te.QuantizeSplits(big, 16)
	for i, p := range big.Paths {
		fmt.Printf("  path %d (weight %2d/16, %.0f Mbps): ", i+1, weights[i], p.Rate)
		for j, n := range p.Path.Nodes {
			if j > 0 {
				fmt.Print(" > ")
			}
			fmt.Print(name[n])
		}
		fmt.Println()
	}
}
