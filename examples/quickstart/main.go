// Quickstart brings the whole platform up in-process: a controller
// running the L2 learning app, three emulated switches in a line
// connected to it over real TCP zof sessions, and two hosts that ping
// each other — the zen platform's hello-world.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/topo"
)

func main() {
	// 1. Topology: s1 - s2 - s3, 1 Gbps links.
	graph := topo.Linear(3, 1000)

	// 2. Start everything: controller + emulation + sessions.
	net, err := core.Start(core.Options{
		Graph: graph,
		Apps:  []controller.App{apps.NewLearningSwitch()},
	})
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	defer net.Stop()
	fmt.Printf("controller at %s, %d switches connected\n",
		net.Controller.Addr(), len(net.Controller.Switches()))

	// Discover the inter-switch links first so the NIB can tell host
	// ports from transit ports when it learns host locations.
	if err := net.DiscoverLinks(graph.NumLinks(), 5*time.Second); err != nil {
		log.Fatalf("discovery: %v", err)
	}

	// 3. Attach hosts at the edges.
	h1, err := net.AddHost("h1", 1, packet.IPv4Addr{10, 0, 0, 1})
	if err != nil {
		log.Fatal(err)
	}
	h2, err := net.AddHost("h2", 3, packet.IPv4Addr{10, 0, 0, 2})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Ping: the first packet takes the reactive slow path (ARP and
	// ICMP both traverse the controller); repeats ride installed flows.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		rtt, err := h1.Ping(ctx, h2.IP)
		if err != nil {
			log.Fatalf("ping %d: %v", i, err)
		}
		fmt.Printf("ping %d: h1 -> h2 rtt=%v\n", i, rtt)
	}

	// 5. Observe the control plane's view.
	nib := net.Controller.NIB()
	fmt.Printf("NIB: %d switches, %d hosts learned\n",
		len(nib.Switches()), len(nib.Hosts()))
	for _, h := range nib.Hosts() {
		fmt.Printf("  host %v (%v) at switch %d port %d\n", h.IP, h.MAC, h.DPID, h.Port)
	}
	for node, sw := range net.Emu.Switches {
		fmt.Printf("  switch %d: %d flows installed, %d packet-ins\n",
			node, sw.FlowCount(), sw.PacketIns.Load())
	}
}
