// Faulttolerance demonstrates failure recovery end to end: reactive
// shortest-path routing over a diamond topology, a link failure under
// live traffic, and the control plane re-routing around it — with the
// client-observed downtime measured.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/topo"
)

func main() {
	// Diamond: two disjoint paths 1-2-4 and 1-3-4.
	graph := topo.New()
	graph.AddLink(topo.Link{A: 1, B: 2, APort: 1, BPort: 1, Capacity: 1000})
	graph.AddLink(topo.Link{A: 2, B: 4, APort: 2, BPort: 1, Capacity: 1000})
	graph.AddLink(topo.Link{A: 1, B: 3, APort: 2, BPort: 1, Capacity: 1000})
	graph.AddLink(topo.Link{A: 3, B: 4, APort: 2, BPort: 2, Capacity: 1000})

	net, err := core.Start(core.Options{
		Graph: graph,
		Apps:  []controller.App{apps.NewRouting(), apps.NewLearningSwitch()},
	})
	if err != nil {
		log.Fatalf("faulttolerance: %v", err)
	}
	defer net.Stop()

	// Discover the four links so routing sees the full diamond.
	if err := net.DiscoverLinks(4, 5*time.Second); err != nil {
		log.Fatalf("discovery: %v", err)
	}
	fmt.Printf("discovered %d links\n", net.Controller.NIB().Graph().NumLinks())

	h1, err := net.AddHost("h1", 1, packet.IPv4Addr{10, 0, 0, 1})
	if err != nil {
		log.Fatal(err)
	}
	h4, err := net.AddHost("h4", 4, packet.IPv4Addr{10, 0, 0, 4})
	if err != nil {
		log.Fatal(err)
	}

	ping := func() (time.Duration, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		return h1.Ping(ctx, h4.IP)
	}

	rtt, err := ping()
	if err != nil {
		log.Fatalf("baseline ping: %v", err)
	}
	fmt.Printf("baseline: h1 -> h4 rtt=%v\n", rtt)

	// Fail the 1-2 link under traffic and measure client downtime.
	key := topo.LinkKey{A: 1, B: 2, APort: 1, BPort: 1}
	fmt.Printf("failing link %v ...\n", key)
	failedAt := time.Now()
	if err := net.Emu.FailLink(key); err != nil {
		log.Fatal(err)
	}
	var recovered time.Duration
	for attempt := 1; ; attempt++ {
		if rtt, err := ping(); err == nil {
			recovered = time.Since(failedAt)
			fmt.Printf("recovered after %v (attempt %d), rtt=%v\n", recovered, attempt, rtt)
			break
		}
		if time.Since(failedAt) > 10*time.Second {
			log.Fatal("never recovered")
		}
	}

	// Restore and verify both paths work again.
	if err := net.Emu.RestoreLink(key); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := ping(); err != nil {
		log.Fatalf("ping after restore: %v", err)
	}
	fmt.Println("link restored; connectivity verified")
	fmt.Printf("client-visible downtime: %v\n", recovered)
}
