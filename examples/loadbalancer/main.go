// Loadbalancer demonstrates the Ananta-style layer-4 VIP balancer: a
// client addresses a virtual IP; the controller's LB app proxy-ARPs
// the VIP, sheds each new flow onto a backend with NAT rules installed
// at the edge switch, and rewrites replies to come from the VIP.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/topo"
)

func main() {
	vip := packet.IPv4Addr{10, 0, 0, 100}
	backendIPs := []packet.IPv4Addr{
		{10, 0, 0, 11}, {10, 0, 0, 12}, {10, 0, 0, 13},
	}
	lb := apps.NewLoadBalancer(vip, backendIPs...)

	graph := topo.New()
	graph.AddNode(1) // single edge switch
	net, err := core.Start(core.Options{
		Graph: graph,
		Apps:  []controller.App{lb, apps.NewLearningSwitch()},
	})
	if err != nil {
		log.Fatalf("loadbalancer: %v", err)
	}
	defer net.Stop()

	client, err := net.AddHost("client", 1, packet.IPv4Addr{10, 0, 0, 1})
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	served := map[string]int{}
	var backends []*netem.Host
	for i, ip := range backendIPs {
		name := fmt.Sprintf("backend%d", i+1)
		b, err := net.AddHost(name, 1, ip)
		if err != nil {
			log.Fatal(err)
		}
		b.OnUDP = func(src packet.IPv4Addr, sp, dp uint16, payload []byte) {
			mu.Lock()
			served[name]++
			mu.Unlock()
			b.SendUDP(src, dp, sp, append([]byte("echo:"), payload...))
		}
		backends = append(backends, b)
	}

	// Backends announce themselves (any traffic populates the NIB).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, b := range backends {
		if _, err := b.Ping(ctx, client.IP); err != nil {
			log.Fatalf("backend warmup: %v", err)
		}
	}

	// Count replies; all must appear to come from the VIP.
	var replies, fromVIP int
	client.OnUDP = func(src packet.IPv4Addr, sp, dp uint16, payload []byte) {
		mu.Lock()
		replies++
		if src == vip {
			fromVIP++
		}
		mu.Unlock()
	}

	const flows = 30
	fmt.Printf("sending %d flows to VIP %v ...\n", flows, vip)
	for i := 0; i < flows; i++ {
		client.SendUDP(vip, uint16(30000+i), 80, []byte(fmt.Sprintf("req-%d", i)))
		time.Sleep(15 * time.Millisecond) // let each first packet traverse the controller
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := replies >= flows
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("replies: %d/%d, from VIP: %d\n", replies, flows, fromVIP)
	for name, n := range served {
		fmt.Printf("  %s served %d flows\n", name, n)
	}
	fmt.Printf("per-flow decisions recorded: %d\n", len(lb.Decisions()))
}
