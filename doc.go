// Package repro is the zen network architecture platform: a complete
// software-defined networking stack in pure Go — southbound protocol,
// software switches, controller and applications, emulator, and the
// wide-area services (traffic engineering, congestion-free updates,
// intents) — built as the reproduction artifact for Larry Peterson's
// SIGCOMM 2013 keynote "Zen and the art of network architecture".
//
// The implementation lives under internal/; cmd/ holds the binaries
// and examples/ the runnable walkthroughs. bench_test.go in this
// directory hosts one testing.B per experiment of the synthetic
// evaluation suite (see DESIGN.md and EXPERIMENTS.md).
package repro
