// Command zend is the zen controller daemon: it listens for datapath
// (zswitch or emulated) connections on the southbound address and runs
// the selected control applications.
//
// Usage:
//
//	zend -addr :6653 -apps learning
//	zend -addr :6653 -apps routing,learning -discovery
//	zend -addr :6653 -apps learning -topo wan.json -emulate   # self-hosted emulation
//
// With -emulate and -topo, zend realizes the topology in-process with
// emulated switches connected back to itself — a one-command playground.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/topo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6653", "southbound listen address")
	appList := flag.String("apps", "learning", "comma-separated: learning,routing,acl,lb,stats")
	discovery := flag.Bool("discovery", true, "run periodic LLDP topology discovery")
	topoFile := flag.String("topo", "", "JSON topology (required with -emulate)")
	emulate := flag.Bool("emulate", false, "also emulate the topology in-process")
	vip := flag.String("vip", "10.0.0.100", "load balancer VIP (with apps=lb)")
	httpAddr := flag.String("http", "", "northbound REST listen address (empty = disabled)")
	debugAddr := flag.String("debug", "", "pprof/metrics debug listen address (empty = disabled)")
	traceMode := flag.String("trace", "off", "control-loop tracing: off, sampled, full")
	flag.Parse()

	var appObjs []controller.App
	for _, name := range strings.Split(*appList, ",") {
		switch strings.TrimSpace(name) {
		case "learning":
			appObjs = append(appObjs, apps.NewLearningSwitch())
		case "routing":
			appObjs = append(appObjs, apps.NewRouting())
		case "acl":
			appObjs = append(appObjs, apps.NewACL())
		case "lb":
			ip, err := parseIPv4(*vip)
			if err != nil {
				log.Fatalf("zend: %v", err)
			}
			appObjs = append(appObjs, apps.NewLoadBalancer(ip))
		case "stats":
			appObjs = append(appObjs, apps.NewStatsMonitor())
		case "":
		default:
			log.Fatalf("zend: unknown app %q", name)
		}
	}

	cfg := controller.Config{
		Addr:      *addr,
		Discovery: *discovery,
		Logf:      log.Printf,
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	serveREST := func(ctl *controller.Controller) {
		mode, ok := obs.ParseTraceMode(*traceMode)
		if !ok {
			log.Fatalf("zend: bad -trace %q (want off, sampled or full)", *traceMode)
		}
		ctl.Tracing().SetMode(mode)
		if *httpAddr != "" {
			addr, _, err := ctl.ServeHTTP(*httpAddr)
			if err != nil {
				log.Fatalf("zend: %v", err)
			}
			log.Printf("zend: northbound REST on http://%s/v1/", addr)
		}
		if *debugAddr != "" {
			addr, _, err := ctl.ServeDebug(*debugAddr)
			if err != nil {
				log.Fatalf("zend: %v", err)
			}
			log.Printf("zend: debug (pprof, metrics) on http://%s/debug/", addr)
		}
	}

	if *emulate {
		if *topoFile == "" {
			log.Fatal("zend: -emulate requires -topo")
		}
		f, err := os.Open(*topoFile)
		if err != nil {
			log.Fatalf("zend: %v", err)
		}
		g, err := topo.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("zend: %v", err)
		}
		n, err := core.Start(core.Options{
			Graph:      g,
			Apps:       appObjs,
			Controller: cfg,
		})
		if err != nil {
			log.Fatalf("zend: %v", err)
		}
		defer n.Stop()
		log.Printf("zend: emulating %d switches, %d links; southbound %s",
			g.NumNodes(), g.NumLinks(), n.Controller.Addr())
		serveREST(n.Controller)
		if err := n.DiscoverLinks(g.NumLinks(), 10*time.Second); err != nil {
			log.Printf("zend: discovery incomplete: %v", err)
		} else {
			log.Printf("zend: discovered all %d links", g.NumLinks())
		}
		<-sig
		log.Print("zend: shutting down")
		return
	}

	ctl, err := controller.New(cfg)
	if err != nil {
		log.Fatalf("zend: %v", err)
	}
	defer ctl.Close()
	ctl.Use(appObjs...)
	serveREST(ctl)
	log.Printf("zend: controller listening on %s, apps: %s", ctl.Addr(), *appList)
	<-sig
	log.Print("zend: shutting down")
}

func parseIPv4(s string) (packet.IPv4Addr, error) {
	var a packet.IPv4Addr
	var b [4]int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &b[0], &b[1], &b[2], &b[3]); err != nil {
		return a, fmt.Errorf("bad IPv4 %q", s)
	}
	for i, v := range b {
		if v < 0 || v > 255 {
			return a, fmt.Errorf("bad IPv4 %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}
