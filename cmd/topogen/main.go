// Command topogen emits topology descriptions in the platform's JSON
// schema for consumption by zend and other tools.
//
// Usage:
//
//	topogen -kind fattree -k 4 -cap 1000 > fattree.json
//	topogen -kind wan > wan.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topo"
)

func main() {
	kind := flag.String("kind", "linear", "linear|ring|star|tree|fattree|wan")
	n := flag.Int("n", 4, "node count (linear/ring/star)")
	depth := flag.Int("depth", 2, "tree depth")
	fanout := flag.Int("fanout", 2, "tree fanout")
	k := flag.Int("k", 4, "fat-tree arity (even)")
	capMbps := flag.Float64("cap", 1000, "link capacity in Mbps")
	flag.Parse()

	var g *topo.Graph
	switch *kind {
	case "linear":
		g = topo.Linear(*n, *capMbps)
	case "ring":
		g = topo.Ring(*n, *capMbps)
	case "star":
		g = topo.Star(*n, *capMbps)
	case "tree":
		g, _ = topo.Tree(*depth, *fanout, *capMbps)
	case "fattree":
		var err error
		g, _, err = topo.FatTree(*k, *capMbps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
	case "wan":
		g, _ = topo.WAN(*capMbps)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := g.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
}
