// Command zbench regenerates the synthetic evaluation suite declared
// in DESIGN.md: every experiment (E1-E10 plus ablations) prints the
// table or series its SIGCOMM'13-style counterpart would report.
//
// Usage:
//
//	zbench -exp all            # everything, full parameters
//	zbench -exp e3 -quick      # one experiment, reduced parameters
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: e1,e1a,e2,e3,e3a,e4,e5,e6,e7,e8,e9,e10,e11,e12,e14,e15 or all")
	quick := flag.Bool("quick", false, "reduced parameters for a fast pass")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonOut := flag.String("json", "", "also write machine-readable results to this file (e7,e8,e9,e10,e11,e12,e14,e15)")
	flag.Parse()

	run := func(id string) bool {
		return *exp == "all" || strings.EqualFold(*exp, id)
	}
	ran := 0
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "zbench: %v\n", err)
		os.Exit(1)
	}

	if run("e1") {
		ran++
		cfg := experiments.E1Config{SwitchCounts: []int{1, 4, 16, 64}, Window: 8, Duration: 2 * time.Second}
		if *quick {
			cfg.SwitchCounts = []int{1, 4, 16}
			cfg.Duration = 500 * time.Millisecond
		}
		t, err := experiments.E1FlowSetup(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if run("e1a") {
		ran++
		d := 2 * time.Second
		if *quick {
			d = 500 * time.Millisecond
		}
		t, err := experiments.E1aProactiveVsReactive(d)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if run("e2") {
		ran++
		cfg := experiments.E2Config{Sizes: []int{100, 1000, 10000, 100000}, Measure: 200 * time.Millisecond}
		if *quick {
			cfg.Sizes = []int{100, 1000, 10000}
			cfg.Measure = 50 * time.Millisecond
		}
		experiments.E2Lookup(cfg).Fprint(os.Stdout)
	}
	if run("e3") {
		ran++
		cfg := experiments.E3Config{Seed: *seed}
		if *quick {
			cfg.Scales = []float64{0.4, 0.8, 1.2, 2.0}
		}
		t, err := experiments.E3Utilization(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if run("e3a") {
		ran++
		ks := []int{1, 2, 4, 8}
		if *quick {
			ks = []int{1, 4}
		}
		t, err := experiments.E3aPathDiversity(ks, *seed)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if run("e4") {
		ran++
		cfg := experiments.E4Config{Trials: 10, Seed: *seed}
		if *quick {
			cfg.Trials = 3
		}
		t, err := experiments.E4Update(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if run("e5") {
		ran++
		cfg := experiments.E5Config{Failures: 10, Seed: *seed}
		if *quick {
			cfg.Failures = 3
		}
		t, err := experiments.E5Recovery(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if run("e6") {
		ran++
		experiments.E6Codec().Fprint(os.Stdout)
	}
	if run("e7") {
		ran++
		cfg := experiments.E7Config{}
		if *quick {
			cfg.Workers = []int{1, 4}
			cfg.Measure = 100 * time.Millisecond
		}
		t, res, err := experiments.E7PipelineParallel(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if run("e8") {
		ran++
		cfg := experiments.E8Config{}
		if *quick {
			cfg.SwitchCounts = []int{1, 4, 16}
			cfg.Duration = 500 * time.Millisecond
		}
		t, res, err := experiments.E8ControlPlaneScaling(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if run("e9") {
		ran++
		cfg := experiments.E9Config{}
		if *quick {
			cfg.MissBudgets = []int{2}
			cfg.Backoffs = []time.Duration{10 * time.Millisecond}
			cfg.Rules = 8
		}
		t, res, err := experiments.E9FaultRecovery(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if run("e10") {
		ran++
		cfg := experiments.E10Config{}
		if *quick {
			cfg.Switches = 3
			cfg.Txns = 25
			cfg.OpsPerSwitch = 2
			cfg.PreRules = 4
		}
		t, res, err := experiments.E10Transactions(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if run("e11") {
		ran++
		cfg := experiments.E11Config{}
		if *quick {
			cfg.Switches = 4
			cfg.Duration = 500 * time.Millisecond
		}
		t, res, err := experiments.E11ObservabilityOverhead(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if run("e12") {
		ran++
		cfg := experiments.E12Config{}
		if *quick {
			cfg.Workers = []int{1, 2}
			cfg.Measure = 100 * time.Millisecond
		}
		t, res, err := experiments.E12BurstScaling(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if run("e14") {
		ran++
		cfg := experiments.E14Config{}
		if *quick {
			cfg.Switches = 2
			cfg.Rules = 4
			cfg.LoadDuration = 200 * time.Millisecond
		}
		t, res, err := experiments.E14ClusterFailover(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if run("e15") {
		ran++
		cfg := experiments.E15Config{Seed: *seed}
		if *quick {
			cfg.Flows = 500
			cfg.Measure = 100 * time.Millisecond
			cfg.OverlayFlows = 8
			cfg.OverlayRounds = 2
		}
		t, res, err := experiments.E15StatefulNF(cfg)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "zbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
