// Command zswitch runs one standalone software datapath that connects
// to a zend controller over TCP. Its ports are loopback-wired in pairs
// (port 1 <-> port 2, 3 <-> 4, ...) so that forwarded traffic is
// observable through port counters even without an attached emulation.
//
// Usage:
//
//	zswitch -controller 127.0.0.1:6653 -dpid 7 -ports 4
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataplane"
)

func main() {
	controllerAddr := flag.String("controller", "127.0.0.1:6653", "controller address")
	dpid := flag.Uint64("dpid", 1, "datapath id")
	ports := flag.Int("ports", 4, "number of ports (paired internally)")
	tables := flag.Int("tables", 1, "pipeline tables")
	tick := flag.Duration("tick", time.Second, "flow-timeout sweep period")
	flag.Parse()

	sw := dataplane.NewSwitch(dataplane.Config{
		DPID:      *dpid,
		NumTables: *tables,
	})
	created := make([]*dataplane.Port, 0, *ports)
	for i := 1; i <= *ports; i++ {
		created = append(created, sw.AddPort(uint32(i), "", 1000))
	}
	// Loopback pairing: frames leaving port 2k-1 arrive on port 2k and
	// vice versa.
	for i := 0; i+1 < len(created); i += 2 {
		a, b := uint32(i+1), uint32(i+2)
		created[i].SetTx(func(data []byte) { sw.HandleFrame(b, data) })
		created[i+1].SetTx(func(data []byte) { sw.HandleFrame(a, data) })
	}

	dp, err := dataplane.Connect(sw, *controllerAddr, 5*time.Second)
	if err != nil {
		log.Fatalf("zswitch: %v", err)
	}
	defer dp.Close()
	log.Printf("zswitch: dpid %#x connected to %s with %d ports", *dpid, *controllerAddr, *ports)

	stopTick := make(chan struct{})
	go func() {
		t := time.NewTicker(*tick)
		defer t.Stop()
		for {
			select {
			case <-stopTick:
				return
			case now := <-t.C:
				sw.Tick(now)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		log.Print("zswitch: shutting down")
	case <-dp.Done():
		log.Print("zswitch: controller session ended")
	}
	close(stopTick)
}
